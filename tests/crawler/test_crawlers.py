"""Integration tests for the focused crawler, the unfocused baseline, and monitoring."""

import pytest

from repro.core.schema import create_focus_database
from repro.crawler.focused import CrawlerConfig, FocusedCrawler
from repro.crawler.monitor import CrawlMonitor
from repro.crawler.unfocused import UnfocusedCrawler
from repro.webgraph.fetch import Fetcher

GOOD = "recreation/cycling"


def make_crawler(small_web, trained_model, taxonomy, focused=True, **config_kwargs):
    from repro.classifier.training import ModelInstaller

    database = create_focus_database(buffer_pool_pages=512)
    # The crawl database also carries the classifier tables, as in the paper's
    # single-DB architecture (monitoring SQL joins CRAWL with TAXONOMY).
    ModelInstaller(database).install(trained_model)
    fetcher = Fetcher(small_web, simulate_failures=False)
    config = CrawlerConfig(max_pages=config_kwargs.pop("max_pages", 120), **config_kwargs)
    crawler_cls = FocusedCrawler if focused else UnfocusedCrawler
    crawler = crawler_cls(fetcher, trained_model, taxonomy, database, config)
    return crawler, database


@pytest.fixture(scope="module")
def focused_run(small_web, trained_model, taxonomy):
    """One moderately sized focused crawl shared by several read-only tests."""
    crawler, database = make_crawler(
        small_web, trained_model, taxonomy, max_pages=150, distill_every=60
    )
    seeds = small_web.keyword_seed_pages(GOOD, count=10)
    crawler.add_seeds(seeds)
    trace = crawler.crawl()
    return crawler, database, trace, seeds


class TestFocusedCrawler:
    def test_crawl_fetches_requested_number_of_pages(self, focused_run):
        _, _, trace, _ = focused_run
        assert trace.pages_fetched == 150
        assert len(trace.fetched_urls) == 150
        assert len(set(trace.fetched_urls)) == 150  # no page fetched twice

    def test_crawl_tables_populated(self, focused_run):
        _, database, trace, _ = focused_run
        visited = database.sql("select count(*) n from CRAWL where status = 'visited'")[0]["n"]
        assert visited == trace.pages_fetched
        assert len(database.table("LINK")) > trace.pages_fetched
        frontier = database.sql("select count(*) n from CRAWL where status = 'frontier'")[0]["n"]
        assert frontier > 0

    def test_harvest_beats_unfocused_baseline(self, small_web, trained_model, taxonomy, focused_run):
        _, _, focused_trace, seeds = focused_run
        baseline, _ = make_crawler(
            small_web, trained_model, taxonomy, focused=False, max_pages=150
        )
        baseline.add_seeds(seeds)
        unfocused_trace = baseline.crawl()
        focused_harvest = sum(focused_trace.relevance_series()) / 150
        unfocused_harvest = sum(unfocused_trace.relevance_series()) / 150
        assert focused_harvest > unfocused_harvest

    def test_distillation_ran_and_scores_stored(self, focused_run):
        crawler, database, trace, _ = focused_run
        assert trace.distillations >= 1
        assert len(database.table("HUBS")) > 0
        top_hubs = crawler.top_hubs(5)
        assert top_hubs and all(isinstance(url, str) for url, _ in top_hubs)
        assert crawler.top_authorities(5)

    def test_link_weights_reflect_relevance(self, focused_run):
        _, database, _, _ = focused_run
        rows = database.sql("select wgt_fwd, wgt_rev from LINK limit 200")
        assert all(0.0 <= r["wgt_fwd"] <= 1.0 and 0.0 <= r["wgt_rev"] <= 1.0 for r in rows)

    def test_visits_record_best_leaf_class(self, focused_run, taxonomy):
        _, _, trace, _ = focused_run
        assert all(visit.best_leaf_cid is not None for visit in trace.visits)
        leaf_cids = {leaf.cid for leaf in taxonomy.leaves()}
        assert all(visit.best_leaf_cid in leaf_cids for visit in trace.visits)

    def test_hard_focus_mode_expands_fewer_links(self, small_web, trained_model, taxonomy):
        soft, _ = make_crawler(small_web, trained_model, taxonomy, max_pages=60, focus_mode="soft", distill_every=0)
        hard, _ = make_crawler(small_web, trained_model, taxonomy, max_pages=60, focus_mode="hard", distill_every=0)
        seeds = small_web.keyword_seed_pages(GOOD, count=8)
        soft.add_seeds(seeds)
        hard.add_seeds(seeds)
        soft.crawl()
        hard.crawl()
        assert len(hard.frontier.known_urls()) <= len(soft.frontier.known_urls())

    def test_invalid_focus_mode_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            make_crawler(small_web, trained_model, taxonomy, focus_mode="fuzzy")

    def test_crawl_handles_failures_and_dead_links(self, small_web, trained_model, taxonomy):
        database = create_focus_database(buffer_pool_pages=256)
        fetcher = Fetcher(small_web, failure_seed=1, simulate_failures=True)
        crawler = FocusedCrawler(
            fetcher, trained_model, taxonomy, database, CrawlerConfig(max_pages=80, distill_every=0)
        )
        crawler.add_seeds(small_web.keyword_seed_pages(GOOD, count=10))
        trace = crawler.crawl()
        assert trace.pages_fetched == 80
        # Transient failures and dead links are recorded, not fatal.
        assert database.sql("select count(*) n from CRAWL where numtries > 0 and status <> 'visited'")

    def test_stagnation_when_frontier_exhausted(self, small_web, trained_model, taxonomy):
        crawler, _ = make_crawler(small_web, trained_model, taxonomy, max_pages=10_000, focus_mode="hard", distill_every=0)
        # A single seed from a *small* sibling topic: hard focus refuses to expand
        # off-topic pages, so the frontier dries up long before the budget.
        crawler.add_seeds(small_web.pages_of_topic("arts/music")[:1])
        trace = crawler.crawl()
        assert trace.stagnated
        assert trace.pages_fetched < 10_000


class TestUnfocusedCrawler:
    def test_unfocused_ignores_relevance_for_ordering(self, small_web, trained_model, taxonomy):
        crawler, _ = make_crawler(small_web, trained_model, taxonomy, focused=False, max_pages=40)
        seeds = small_web.keyword_seed_pages(GOOD, count=5)
        crawler.add_seeds(seeds)
        trace = crawler.crawl()
        assert trace.pages_fetched == 40
        assert crawler.config.focus_mode == "none"
        assert crawler.config.distill_every == 0
        # Relevance is still *measured* for every page (Figure 5a needs it).
        assert all(0.0 <= v.relevance <= 1.0 for v in trace.visits)


class TestMonitor:
    def test_harvest_rate_buckets(self, focused_run):
        _, database, trace, _ = focused_run
        monitor = CrawlMonitor(database)
        buckets = monitor.harvest_rate_by_bucket(bucket_size=50)
        assert sum(row["pages"] for row in buckets) == trace.pages_fetched
        assert all(0.0 <= row["avg_relevance"] <= 1.0 for row in buckets)

    def test_topic_census_names_and_counts(self, focused_run):
        _, database, trace, _ = focused_run
        census = CrawlMonitor(database).topic_census(limit=3)
        assert census and census[0]["cnt"] >= census[-1]["cnt"]
        assert all(isinstance(row["name"], str) for row in census)

    def test_missed_hub_neighbours_query(self, focused_run):
        _, database, _, _ = focused_run
        monitor = CrawlMonitor(database)
        psi = monitor.hub_score_percentile(0.9)
        missed = monitor.missed_hub_neighbours(psi)
        # Every returned URL must be unvisited (numtries = 0).
        urls = {row["url"] for row in missed}
        if urls:
            counts = database.sql("select count(*) n from CRAWL where numtries = 0 and url in (select url from CRAWL where numtries = 0)")
            assert counts[0]["n"] >= len(urls)

    def test_frontier_and_visited_counts(self, focused_run):
        _, database, trace, _ = focused_run
        monitor = CrawlMonitor(database)
        assert monitor.visited_count() == trace.pages_fetched
        assert monitor.frontier_size() > 0
        assert 0.0 <= monitor.average_relevance() <= 1.0
        assert 0.0 <= monitor.average_relevance(last_n_ticks=50) <= 1.0

    def test_subtree_census_covers_whole_tree(self, focused_run, taxonomy):
        _, database, trace, _ = focused_run
        monitor = CrawlMonitor(database)
        root = database.sql("select kcid from TAXONOMY where pcid is null")[0]["kcid"]
        census = monitor.subtree_census(root)
        # The root subtree holds every visited page; a leaf subtree a slice.
        assert census["pages"] == trace.pages_fetched
        assert 0.0 <= census["avg_relevance"] <= 1.0
        children = database.sql(
            "select kcid from TAXONOMY where pcid = :root", {"root": root}
        )
        child_total = sum(
            monitor.subtree_census(row["kcid"])["pages"] for row in children
        )
        at_root = database.sql(
            "select count(*) n from CRAWL where status = 'visited' and kcid = :root",
            {"root": root},
        )[0]["n"]
        assert child_total == census["pages"] - at_root

    def test_stagnation_report_fields(self, focused_run):
        _, database, _, _ = focused_run
        report = CrawlMonitor(database).diagnose_stagnation(relevance_floor=0.01)
        assert report.frontier_size > 0
        assert report.dominant_kcid is not None
        assert 0.0 <= report.dominant_share <= 1.0
        assert report.stagnating in (True, False)
