"""Equivalence and behaviour tests for the batched crawl engine.

The batched pipeline must be a pure *execution strategy* change:

* at ``batch_size=1`` it visits the same pages in the same order with
  bit-for-bit identical relevance values as the reference serial loop;
* at larger K the interleaving changes, but on a bounded web the crawl
  converges to exactly the same visited set;
* the incremental distiller must agree with a full-table recomputation.
"""

import pytest

from repro.classifier.tokenizer import term_frequencies
from repro.core.schema import create_focus_database
from repro.crawler.engine import CrawlerConfig, OutcomeLRU
from repro.crawler.focused import FocusedCrawler
from repro.distiller.hits import weighted_hits
from repro.webgraph.fetch import Fetcher

GOOD = "recreation/cycling"


def run_crawl(
    small_web,
    trained_model,
    taxonomy,
    seeds,
    simulate_failures=True,
    **config_kwargs,
):
    from repro.classifier.training import ModelInstaller

    database = create_focus_database(buffer_pool_pages=512)
    ModelInstaller(database).install(trained_model)
    # The server farm's failure stream is shared state on the web graph;
    # reseed per run so every crawl sees the identical stream.
    small_web.servers.reseed(0)
    fetcher = Fetcher(small_web, failure_seed=0, simulate_failures=simulate_failures)
    config = CrawlerConfig(**config_kwargs)
    crawler = FocusedCrawler(fetcher, trained_model, taxonomy, database, config)
    crawler.add_seeds(seeds)
    trace = crawler.crawl()
    return crawler, database, trace


@pytest.fixture(scope="module")
def crawl_seeds(small_web):
    return small_web.keyword_seed_pages(GOOD, count=8)


class TestSerialBatchedEquivalence:
    def test_k1_batched_matches_serial_bit_for_bit(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """batch_size=1 reproduces the serial loop exactly — URLs, relevance
        floats, failures, and distillation cadence."""
        kwargs = dict(max_pages=120, distill_every=50)
        _, serial_db, serial = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, **kwargs
        )
        _, batched_db, batched = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            engine="batched", batch_size=1, **kwargs,
        )
        assert serial.fetched_urls == batched.fetched_urls
        assert serial.relevance_series() == batched.relevance_series()  # bitwise
        assert serial.failed_urls == batched.failed_urls
        assert serial.distillations == batched.distillations
        assert len(serial_db.table("CRAWL")) == len(batched_db.table("CRAWL"))
        assert len(serial_db.table("LINK")) == len(batched_db.table("LINK"))

    def test_k1_link_table_state_identical(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Buffered link writes leave the same final LINK rows as serial."""
        kwargs = dict(max_pages=80, distill_every=0)
        _, serial_db, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, **kwargs
        )
        _, batched_db, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            engine="batched", batch_size=1, **kwargs,
        )
        serial_rows = sorted(serial_db.table("LINK").rows())
        batched_rows = sorted(batched_db.table("LINK").rows())
        assert serial_rows == batched_rows

    def test_k8_converges_to_same_crawl_set(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """On a bounded web a batched crawl visits exactly the serial set."""
        kwargs = dict(max_pages=10_000, distill_every=0, simulate_failures=False,
                      stagnation_patience=10_000)
        _, _, serial = run_crawl(small_web, trained_model, taxonomy, crawl_seeds, **kwargs)
        _, _, batched = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            batch_size=8, fetch_workers=1, **kwargs,
        )
        assert serial.stagnated and batched.stagnated  # frontier exhausted
        assert serial.visited_set() == batched.visited_set()

    def test_fetch_worker_pool_is_deterministic(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """With a deterministic web, the thread-pool fetch stage returns
        results in checkout order — worker count cannot change the crawl."""
        kwargs = dict(max_pages=100, distill_every=40, simulate_failures=False)
        _, _, one = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            batch_size=8, fetch_workers=1, **kwargs,
        )
        _, _, eight = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            batch_size=8, fetch_workers=8, **kwargs,
        )
        assert one.fetched_urls == eight.fetched_urls
        assert one.relevance_series() == eight.relevance_series()

    def test_batched_relevance_matches_reference_classifier(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """The batch classifier path records Equation-3 relevance bit for bit
        (python backend) or to 1e-9 (numpy backend, via the env override)."""
        _, _, batched = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=60, distill_every=0, batch_size=8, simulate_failures=False,
        )
        numpy_backend = CrawlerConfig().score_backend == "numpy"
        for visit in batched.visits[:40]:
            frequencies = term_frequencies(small_web.page(visit.url).tokens)
            reference = trained_model.relevance(frequencies)
            if numpy_backend:
                assert visit.relevance == pytest.approx(reference, abs=1e-9)
            else:
                assert visit.relevance == reference
            assert visit.best_leaf_cid == trained_model.best_leaf(frequencies)


class TestIncrementalDistillation:
    def test_incremental_agrees_with_full_recomputation(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Engine distillation over the delta cache == full LINK-table HITS."""
        crawler, _, trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=120, distill_every=40, batch_size=8,
        )
        assert trace.distillations >= 2
        # A fresh run folds the rounds recorded since the last in-crawl
        # distillation into the cached adjacency before scoring.
        incremental = crawler.run_distillation()
        full = weighted_hits(
            crawler._links_from_table(),
            relevance=crawler._relevance_map(),
            rho=crawler.config.rho,
            max_iterations=crawler.config.distill_iterations,
        )
        assert set(incremental.hub_scores) == set(full.hub_scores)
        assert set(incremental.authority_scores) == set(full.authority_scores)
        for oid, score in full.hub_scores.items():
            assert incremental.hub_scores[oid] == pytest.approx(score, abs=1e-9)
        for oid, score in full.authority_scores.items():
            assert incremental.authority_scores[oid] == pytest.approx(score, abs=1e-9)


class TestScoreBackends:
    """The columnar numpy backend is a pure execution-strategy change."""

    def test_batched_numpy_matches_python_to_tolerance(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=120, distill_every=40, engine="batched", batch_size=8)
        _, _, python_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="python", **kwargs,
        )
        _, _, numpy_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="numpy", **kwargs,
        )
        assert python_trace.fetched_urls == numpy_trace.fetched_urls
        for a, b in zip(
            python_trace.relevance_series(), numpy_trace.relevance_series()
        ):
            assert b == pytest.approx(a, abs=1e-9)
        assert python_trace.distillations == numpy_trace.distillations
        reference = python_trace.last_distillation
        outcome = numpy_trace.last_distillation
        assert set(outcome.hub_scores) == set(reference.hub_scores)
        for oid, score in reference.hub_scores.items():
            assert outcome.hub_scores[oid] == pytest.approx(score, abs=1e-9)
        for oid, score in reference.authority_scores.items():
            assert outcome.authority_scores[oid] == pytest.approx(score, abs=1e-9)

    def test_serial_numpy_matches_python_to_tolerance(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=80, distill_every=30)
        _, _, python_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="python", **kwargs,
        )
        _, _, numpy_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="numpy", **kwargs,
        )
        assert python_trace.fetched_urls == numpy_trace.fetched_urls
        for a, b in zip(
            python_trace.relevance_series(), numpy_trace.relevance_series()
        ):
            assert b == pytest.approx(a, abs=1e-9)

    def test_hard_focus_numpy_matches_python(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=60, distill_every=0, focus_mode="hard",
                      simulate_failures=False, engine="batched", batch_size=4)
        _, _, python_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="python", **kwargs,
        )
        _, _, numpy_trace = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            score_backend="numpy", **kwargs,
        )
        assert python_trace.fetched_urls == numpy_trace.fetched_urls

    def test_stage_timings_recorded(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=40, distill_every=20, batch_size=8, score_backend="numpy",
        )
        timings = crawler.engine.stage_timings
        assert set(timings) == {"fetch", "classify", "write", "distill"}
        assert timings["fetch"] > 0 and timings["classify"] > 0
        assert timings["write"] > 0 and timings["distill"] > 0

    def test_invalid_backend_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], score_backend="fortran")


class TestEngineConfig:
    def test_invalid_engine_mode_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], engine="warp")

    def test_batch_size_must_be_positive(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], batch_size=0)

    def test_auto_mode_picks_batched_for_k_greater_than_one(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, max_pages=10, batch_size=4
        )
        assert crawler.engine.batched

    def test_cache_stats_exposed(self, small_web, trained_model, taxonomy, crawl_seeds):
        crawler, _, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=30, batch_size=4, simulate_failures=False,
        )
        stats = crawler.engine.cache_stats()
        assert stats["misses"] == 30  # every page classified once
        assert stats["entries"] == 30


class TestAsyncFetchPipeline:
    """fetch_mode="async" is a pure execution-strategy change.

    Under a deterministic transport (simulated or latency-injecting),
    the asyncio pipeline must reproduce the threaded path bit for bit —
    draws happen at prepare() time in checkout order and commits happen
    in checkout order, so completion interleaving can only move wall
    clock around.  Under the latency transport it must actually *move*
    it: overlapping I/O with classification is the whole point.
    """

    def test_async_simulated_matches_threaded_bit_for_bit(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=120, distill_every=50, engine="batched", batch_size=8)
        _, threaded_db, threaded = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            fetch_mode="threaded", **kwargs,
        )
        _, async_db, asynced = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            fetch_mode="async", **kwargs,
        )
        assert threaded.fetched_urls == asynced.fetched_urls
        assert threaded.relevance_series() == asynced.relevance_series()  # bitwise
        assert threaded.failed_urls == asynced.failed_urls
        assert threaded.distillations == asynced.distillations
        assert sorted(threaded_db.table("LINK").rows()) == sorted(async_db.table("LINK").rows())

    def test_async_k1_matches_serial_bit_for_bit(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=80, distill_every=40)
        _, _, serial = run_crawl(small_web, trained_model, taxonomy, crawl_seeds, **kwargs)
        _, _, asynced = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            engine="batched", batch_size=1, fetch_mode="async", **kwargs,
        )
        assert serial.fetched_urls == asynced.fetched_urls
        assert serial.relevance_series() == asynced.relevance_series()
        assert serial.failed_urls == asynced.failed_urls

    def test_max_inflight_cannot_change_the_crawl(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=80, distill_every=0, engine="batched", batch_size=8,
                      fetch_mode="async")
        _, _, unbounded = run_crawl(small_web, trained_model, taxonomy, crawl_seeds, **kwargs)
        _, _, narrow = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, max_inflight=2, **kwargs
        )
        _, _, polite = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_inflight=4, per_server_inflight=1, **kwargs,
        )
        assert unbounded.fetched_urls == narrow.fetched_urls == polite.fetched_urls
        assert (
            unbounded.relevance_series()
            == narrow.relevance_series()
            == polite.relevance_series()
        )

    def test_latency_transport_reproducible_across_modes(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """Threaded (resolve-then-sleep) and async traces are identical."""
        kwargs = dict(
            max_pages=60, distill_every=0, engine="batched", batch_size=8,
            transport="latency",
            transport_options={"mean_latency_ms": 1.0, "seed": 4},
        )
        _, _, threaded = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            fetch_mode="threaded", **kwargs,
        )
        _, _, asynced = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            fetch_mode="async", **kwargs,
        )
        assert threaded.fetched_urls == asynced.fetched_urls
        assert threaded.relevance_series() == asynced.relevance_series()
        assert threaded.failed_urls == asynced.failed_urls

    @pytest.mark.walltime
    def test_async_overlaps_latency_with_scoring(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        """The PR's acceptance criterion: with injected latency (5 ms
        mean), the async pipeline is >= 2x the threaded fetch path at
        the same configuration, because sleeps overlap each other and
        classification.  Marked `walltime`: coverage tracing slows the
        compute side while the sleeps stay fixed, so the coverage job
        deselects it."""
        import time as _time

        kwargs = dict(
            max_pages=96, distill_every=0, engine="batched", batch_size=16,
            transport="latency",
            transport_options={"mean_latency_ms": 5.0, "seed": 4},
        )

        def timed(fetch_mode):
            started = _time.perf_counter()
            crawler, _, trace = run_crawl(
                small_web, trained_model, taxonomy, crawl_seeds,
                fetch_mode=fetch_mode, **kwargs,
            )
            return crawler, trace, _time.perf_counter() - started

        threaded_crawler, threaded_trace, threaded_s = timed("threaded")
        async_crawler, async_trace, async_s = timed("async")
        assert threaded_trace.fetched_urls == async_trace.fetched_urls
        pages = len(async_trace.fetched_urls)
        assert pages / async_s >= 2.0 * (pages / threaded_s)
        # The overlap instrumentation sees it: processing ran while
        # fetches were in flight only on the async path.
        assert async_crawler.engine.fetch_overlap_ratio() > 0.0
        assert threaded_crawler.engine.fetch_overlap_ratio() == 0.0

    def test_invalid_fetch_mode_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], fetch_mode="telepathy")

    def test_negative_inflight_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], fetch_mode="async",
                      max_inflight=-1)

    def test_unknown_transport_rejected(self, small_web, trained_model, taxonomy):
        with pytest.raises(ValueError):
            run_crawl(small_web, trained_model, taxonomy, [], transport="morse")


class TestCrossRoundPrefetch:
    """prefetch=True is a pure execution-strategy change.

    Speculative prepares draw from the shared RNG streams *early*, so
    the confirm-or-replay reconciliation must leave every crawl artefact
    — URLs, relevance floats, failures, all four tables — bit-identical
    to the non-prefetch async run.
    """

    def assert_same_crawl(self, a_db, a_trace, b_db, b_trace):
        assert a_trace.fetched_urls == b_trace.fetched_urls
        assert a_trace.relevance_series() == b_trace.relevance_series()  # bitwise
        assert a_trace.failed_urls == b_trace.failed_urls
        assert a_trace.distillations == b_trace.distillations
        for table in ("CRAWL", "LINK", "HUBS", "AUTH"):
            assert sorted(a_db.table(table).rows()) == sorted(b_db.table(table).rows())

    def test_prefetch_bit_identical_simulated(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(max_pages=120, distill_every=50, engine="batched",
                      batch_size=8, fetch_mode="async")
        _, base_db, base = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, prefetch=False, **kwargs
        )
        pre_crawler, pre_db, pre = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, prefetch=True, **kwargs
        )
        self.assert_same_crawl(base_db, base, pre_db, pre)
        stats = pre_crawler.engine.prefetch_stats()
        assert stats["launched"] > 0

    def test_prefetch_bit_identical_latency(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        kwargs = dict(
            max_pages=80, distill_every=30, engine="batched", batch_size=8,
            fetch_mode="async", transport="latency",
            transport_options={"mean_latency_ms": 1.0, "seed": 4},
        )
        _, base_db, base = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, prefetch=False, **kwargs
        )
        _, pre_db, pre = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds, prefetch=True, **kwargs
        )
        self.assert_same_crawl(base_db, base, pre_db, pre)

    def test_prefetch_counters_reconcile(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=120, distill_every=40, engine="batched", batch_size=8,
            fetch_mode="async", prefetch=True,
        )
        stats = crawler.engine.prefetch_stats()
        # Every launched speculation is eventually confirmed, replayed
        # stale, or drained at loop exit — nothing leaks.
        assert stats["hits"] + stats["stale"] + stats["drained"] == stats["launched"]
        assert 0.0 <= stats["stale_ratio"] <= 1.0
        # No speculation survives the run; the draw streams are canonical.
        assert crawler.engine._spec is None

    def test_prefetch_ignored_outside_async_mode(
        self, small_web, trained_model, taxonomy, crawl_seeds
    ):
        crawler, _, _ = run_crawl(
            small_web, trained_model, taxonomy, crawl_seeds,
            max_pages=40, distill_every=0, engine="batched", batch_size=8,
            fetch_mode="threaded", prefetch=True,
        )
        assert not crawler.engine.prefetch_enabled
        assert crawler.engine.prefetch_stats()["launched"] == 0


class TestOutcomeLRU:
    def test_put_get_and_eviction(self):
        cache = OutcomeLRU(capacity=2)
        cache.put(1, "a")
        cache.put(2, "b")
        assert cache.get(1) == "a"   # refreshes 1
        cache.put(3, "c")            # evicts 2 (least recent)
        assert cache.get(2) is None
        assert cache.get(1) == "a"
        assert cache.get(3) == "c"
        assert len(cache) == 2
        assert cache.hits == 3 and cache.misses == 1

    def test_zero_capacity_disables_cache(self):
        cache = OutcomeLRU(capacity=0)
        cache.put(1, "a")
        assert cache.get(1) is None
        assert len(cache) == 0
