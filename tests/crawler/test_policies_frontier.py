"""Tests for crawl orderings and the CRAWL-table-backed frontier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import create_focus_database
from repro.crawler.frontier import Frontier
from repro.crawler.policies import (
    ORDERINGS,
    FetchPolicy,
    aggressive_discovery,
    breadth_first,
    crawl_maintenance,
    ordering_by_name,
    recovery_ordering,
    relevance_only,
)


class TestFetchPolicy:
    def test_zero_means_round_size(self):
        policy = FetchPolicy()
        assert policy.effective_inflight(16) == 16
        assert policy.effective_inflight(1) == 1

    def test_cap_is_clamped_to_round_size(self):
        policy = FetchPolicy(max_inflight=8)
        assert policy.effective_inflight(32) == 8
        assert policy.effective_inflight(4) == 4

    def test_window_is_at_least_one(self):
        assert FetchPolicy(max_inflight=3).effective_inflight(0) == 1

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            FetchPolicy(max_inflight=-1)
        with pytest.raises(ValueError):
            FetchPolicy(per_server_inflight=-2)


class TestOrderings:
    def test_aggressive_discovery_key_order(self):
        ordering = aggressive_discovery(serverload_bucket=1)
        fresh_relevant = {"numtries": 0, "relevance": 0.9, "serverload": 3}
        fresh_irrelevant = {"numtries": 0, "relevance": 0.1, "serverload": 0}
        retried = {"numtries": 2, "relevance": 1.0, "serverload": 0}
        assert ordering.sort_key(fresh_relevant) < ordering.sort_key(fresh_irrelevant)
        assert ordering.sort_key(fresh_relevant) < ordering.sort_key(retried)

    def test_serverload_bucketing(self):
        ordering = aggressive_discovery(serverload_bucket=16)
        lightly_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 3}
        moderately_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 12}
        heavily_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 40}
        assert ordering.sort_key(lightly_loaded) == ordering.sort_key(moderately_loaded)
        assert ordering.sort_key(lightly_loaded) < ordering.sort_key(heavily_loaded)

    def test_missing_values_sort_as_zero(self):
        ordering = relevance_only()
        assert ordering.sort_key({}) == (0,)

    def test_breadth_first_uses_discovery_order(self):
        ordering = breadth_first()
        assert ordering.sort_key({"discovered": 4}) < ordering.sort_key({"discovered": 9})

    def test_registry_and_lookup(self):
        assert "aggressive_discovery" in ORDERINGS
        assert ordering_by_name("breadth_first").name == "breadth_first"
        with pytest.raises(KeyError):
            ordering_by_name("nope")
        assert crawl_maintenance().columns() == ["lastvisited", "hub_score"]
        assert recovery_ordering().columns()[0] == "numtries"


class TestFrontier:
    def make_frontier(self, ordering=None):
        database = create_focus_database(buffer_pool_pages=64)
        return Frontier(database, ordering or aggressive_discovery()), database

    def test_add_seed_and_pop(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://a.example/1")
        frontier.add_url("http://a.example/2", relevance=0.4)
        assert len(frontier) == 2
        assert frontier.pop_next() == "http://a.example/1"
        assert frontier.pop_next() == "http://a.example/2"
        assert frontier.pop_next() is None

    def test_crawl_table_mirrors_frontier(self):
        frontier, db = self.make_frontier()
        frontier.add_url("http://a.example/x", relevance=0.7)
        rows = db.sql("select url, relevance, status from CRAWL")
        assert rows == [{"url": "http://a.example/x", "relevance": 0.7, "status": "frontier"}]

    def test_duplicate_url_keeps_best_priority(self):
        frontier, _ = self.make_frontier()
        frontier.add_url("http://a.example/x", relevance=0.2)
        frontier.add_url("http://A.example/x", relevance=0.9)  # same page, higher priority
        assert len(frontier) == 1
        assert frontier.entry("http://a.example/x").relevance == 0.9

    def test_record_visit_updates_table_and_serverload(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        frontier.add_url("http://s.example/2", relevance=0.5)
        url = frontier.pop_next()
        frontier.record_visit(url, relevance=0.8, tick=1, kcid=42)
        row = db.sql("select status, relevance, kcid, numtries from CRAWL where url = :u", {"u": url})[0]
        assert row == {"status": "visited", "relevance": 0.8, "kcid": 42, "numtries": 1}
        # second page on the same server sees the increased server load
        entry = frontier.entry("http://s.example/2")
        assert frontier._server_load[entry.sid] == 1

    def test_record_failure_retries_then_gives_up(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        url = frontier.pop_next()
        frontier.record_failure(url, max_retries=1)
        assert frontier.pop_next() == url  # retried once
        frontier.record_failure(url, max_retries=1)
        assert frontier.pop_next() is None
        assert db.sql("select status from CRAWL")[0]["status"] == "dead"

    def test_permanent_failure_kills_immediately(self):
        frontier, _ = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        url = frontier.pop_next()
        frontier.record_failure(url, max_retries=5, permanent=True)
        assert frontier.pop_next() is None

    def test_boost_raises_priority_of_unvisited_only(self):
        frontier, _ = self.make_frontier()
        frontier.add_url("http://a.example/1", relevance=0.1)
        frontier.add_url("http://a.example/2", relevance=0.5)
        frontier.boost("http://a.example/1", relevance=0.9)
        assert frontier.pop_next() == "http://a.example/1"
        # boosting a visited page is a no-op
        frontier.record_visit("http://a.example/1", relevance=0.9, tick=1)
        frontier.boost("http://a.example/1", relevance=1.0)
        assert frontier.entry("http://a.example/1").status == "visited"

    def test_requeue_after_pop(self):
        frontier, _ = self.make_frontier()
        frontier.add_seed("http://a.example/1")
        url = frontier.pop_next()
        frontier.requeue(url)
        assert frontier.pop_next() == url

    def test_priority_change_reorders_frontier(self):
        frontier, _ = self.make_frontier(relevance_only())
        frontier.add_url("http://a.example/low", relevance=0.2)
        frontier.add_url("http://a.example/high", relevance=0.6)
        frontier.add_url("http://a.example/low", relevance=0.95)
        assert frontier.pop_next() == "http://a.example/low"

    def test_set_ordering_rebuilds_heap(self):
        frontier, _ = self.make_frontier(relevance_only())
        frontier.add_url("http://a.example/1", relevance=0.9)
        frontier.add_url("http://b.example/2", relevance=0.1)
        frontier.set_ordering(breadth_first())
        assert frontier.pop_next() == "http://a.example/1"

    def test_update_scores_for_maintenance_orderings(self):
        frontier, _ = self.make_frontier(crawl_maintenance())
        frontier.add_url("http://a.example/1", relevance=0.5)
        frontier.update_scores("http://a.example/1", hub_score=0.9, authority_score=0.1)
        assert frontier.entry("http://a.example/1").hub_score == 0.9


class TestHeapHygiene:
    """The lazily-invalidated heap must not grow O(total priority churn).

    Every boost pushes a fresh tuple and strands the old one; without
    compaction a distillation-heavy crawl scans (and re-pops) an
    ever-growing graveyard.  The counters under test are the contract:
    heap size stays within 2x the live frontier after a compaction pass,
    and pop_batch's work is O(k + dead-since-last-compaction), not
    O(boost history).
    """

    def make_frontier(self, ordering=None):
        database = create_focus_database(buffer_pool_pages=64)
        return Frontier(database, ordering or relevance_only()), database

    def churn(self, frontier, urls, rounds):
        """A boost-heavy workload: every URL re-prioritised every round."""
        for round_no in range(rounds):
            for i, url in enumerate(urls):
                # Strictly increasing priorities so every boost re-pushes.
                frontier.boost(url, 0.001 * (round_no * len(urls) + i))

    def test_boost_churn_triggers_compaction(self):
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(100)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=10)
        frontier.pop_batch(1)  # compaction runs at checkout time
        stats = frontier.heap_stats()
        assert stats["compactions"] >= 1
        assert stats["heap_size"] <= 2 * stats["frontier_size"] + 1

    def test_pop_batch_work_is_bounded(self):
        """The micro-bench assertion, counter-based: checking out the whole
        frontier after heavy churn scans a bounded number of tuples, far
        fewer than the dead-tuple history an uncompacted heap would walk."""
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(200)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=20)  # ~4000 stranded tuples
        before = frontier.heap_stats()["tuples_scanned"]
        popped = frontier.pop_batch(len(urls))
        scanned = frontier.heap_stats()["tuples_scanned"] - before
        assert len(popped) == len(urls)
        # O(k + dead-since-compaction): well under the ~4200 tuples pushed.
        assert scanned <= 3 * len(urls)

    def test_compaction_preserves_checkout_order(self):
        frontier, _ = self.make_frontier()
        for i in range(100):
            frontier.add_url(f"http://h{i}.example/p", relevance=i / 100.0)
        expected = [f"http://h{i}.example/p" for i in reversed(range(100))]
        self.churn(frontier, [], rounds=0)
        # Strand tuples, then force a rebuild and drain fully.
        for i in range(100):
            frontier.boost(f"http://h{i}.example/p", relevance=(i + 200) / 1000.0)
        frontier._rebuild_heap()
        drained = frontier.pop_batch(100)
        by_priority = sorted(
            range(100), key=lambda i: ((i + 200) / 1000.0, ), reverse=True
        )
        assert drained == [f"http://h{i}.example/p" for i in by_priority]

    def test_small_heaps_never_compact(self):
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(8)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=3)
        frontier.pop_batch(1)
        assert frontier.heap_stats()["compactions"] == 0


class TestIndexEquivalence:
    """The bucketed index must be observationally identical to the heap.

    The heap index is the reference implementation (the pre-bucketing
    code path, bit for bit); the bucketed index reorganises storage but
    must preserve the exact ``(priority key, oid)`` total order.  We
    drive both through identical randomised operation histories and
    require identical pop sequences at every step.
    """

    ORDERINGS = [aggressive_discovery, relevance_only, breadth_first, crawl_maintenance]

    @staticmethod
    def make_pair(make_ordering):
        pair = []
        for index in ("heap", "bucketed"):
            database = create_focus_database(buffer_pool_pages=64)
            pair.append(Frontier(database, make_ordering(), index=index))
        return pair

    @staticmethod
    def apply(frontier, op):
        """Apply one operation; return anything observable for comparison."""
        kind = op[0]
        if kind == "add":
            frontier.add_url(f"http://s{op[1] % 4}.example/p{op[1]}", relevance=op[2])
            return None
        if kind == "boost":
            frontier.boost(f"http://s{op[1] % 4}.example/p{op[1]}", relevance=op[2])
            return None
        if kind == "scores":
            frontier.update_scores(
                f"http://s{op[1] % 4}.example/p{op[1]}",
                hub_score=op[2],
                authority_score=op[3],
            )
            return None
        if kind == "pop":
            return frontier.pop_batch(op[1])
        if kind == "visit":
            url = frontier.pop_next()
            if url is not None:
                frontier.record_visit(url, relevance=op[1], tick=op[2])
            return url
        if kind == "fail":
            url = frontier.pop_next()
            if url is not None:
                frontier.record_failure(url, max_retries=op[1])
            return url
        raise AssertionError(op)

    @staticmethod
    def drain(frontier):
        return frontier.pop_batch(10_000)

    @pytest.mark.parametrize("make_ordering", ORDERINGS, ids=lambda o: o().name)
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("add"), st.integers(0, 15), st.floats(0, 1, allow_nan=False)),
            st.tuples(st.just("boost"), st.integers(0, 15), st.floats(0, 1, allow_nan=False)),
            st.tuples(st.just("scores"), st.integers(0, 15),
                      st.floats(0, 1, allow_nan=False), st.floats(0, 1, allow_nan=False)),
            st.tuples(st.just("pop"), st.integers(1, 4)),
            st.tuples(st.just("visit"), st.floats(0, 1, allow_nan=False), st.integers(1, 50)),
            st.tuples(st.just("fail"), st.integers(0, 2)),
        ),
        max_size=40,
    ))
    @settings(max_examples=40, deadline=None)
    def test_identical_histories_pop_identically(self, make_ordering, ops):
        heap, bucketed = self.make_pair(make_ordering)
        for op in ops:
            assert self.apply(heap, op) == self.apply(bucketed, op), op
        assert self.drain(heap) == self.drain(bucketed)
        assert len(heap) == len(bucketed) == 0

    @given(
        relevances=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
        k=st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_peek_batch_is_a_pop_prefix(self, relevances, k):
        """peek_batch(k) previews pop_batch(k) exactly and changes nothing."""
        database = create_focus_database(buffer_pool_pages=64)
        frontier = Frontier(database, relevance_only(), index="bucketed")
        for i, relevance in enumerate(relevances):
            frontier.add_url(f"http://s{i % 3}.example/p{i}", relevance=relevance)
        size = len(frontier)
        preview = frontier.peek_batch(k)
        assert len(frontier) == size  # no status changes
        assert frontier.peek_batch(k) == preview  # idempotent
        assert frontier.pop_batch(k) == preview

    def test_band_boundaries_do_not_split_ties(self):
        """Scores straddling a 1/32 band edge still pop in exact key order."""
        frontier, _ = TestFrontier().make_frontier(relevance_only())
        edge = 5 / 32.0
        scores = [edge - 1e-9, edge, edge + 1e-9, edge - 1e-12, edge + 0.03125]
        for i, s in enumerate(scores):
            frontier.add_url(f"http://b.example/p{i}", relevance=s)
        order = sorted(range(len(scores)), key=lambda i: -scores[i])
        assert frontier.pop_batch(len(scores)) == [
            f"http://b.example/p{i}" for i in order
        ]
