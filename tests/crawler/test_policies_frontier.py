"""Tests for crawl orderings and the CRAWL-table-backed frontier."""

import pytest

from repro.core.schema import create_focus_database
from repro.crawler.frontier import Frontier
from repro.crawler.policies import (
    ORDERINGS,
    FetchPolicy,
    aggressive_discovery,
    breadth_first,
    crawl_maintenance,
    ordering_by_name,
    recovery_ordering,
    relevance_only,
)


class TestFetchPolicy:
    def test_zero_means_round_size(self):
        policy = FetchPolicy()
        assert policy.effective_inflight(16) == 16
        assert policy.effective_inflight(1) == 1

    def test_cap_is_clamped_to_round_size(self):
        policy = FetchPolicy(max_inflight=8)
        assert policy.effective_inflight(32) == 8
        assert policy.effective_inflight(4) == 4

    def test_window_is_at_least_one(self):
        assert FetchPolicy(max_inflight=3).effective_inflight(0) == 1

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            FetchPolicy(max_inflight=-1)
        with pytest.raises(ValueError):
            FetchPolicy(per_server_inflight=-2)


class TestOrderings:
    def test_aggressive_discovery_key_order(self):
        ordering = aggressive_discovery(serverload_bucket=1)
        fresh_relevant = {"numtries": 0, "relevance": 0.9, "serverload": 3}
        fresh_irrelevant = {"numtries": 0, "relevance": 0.1, "serverload": 0}
        retried = {"numtries": 2, "relevance": 1.0, "serverload": 0}
        assert ordering.sort_key(fresh_relevant) < ordering.sort_key(fresh_irrelevant)
        assert ordering.sort_key(fresh_relevant) < ordering.sort_key(retried)

    def test_serverload_bucketing(self):
        ordering = aggressive_discovery(serverload_bucket=16)
        lightly_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 3}
        moderately_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 12}
        heavily_loaded = {"numtries": 0, "relevance": 0.9, "serverload": 40}
        assert ordering.sort_key(lightly_loaded) == ordering.sort_key(moderately_loaded)
        assert ordering.sort_key(lightly_loaded) < ordering.sort_key(heavily_loaded)

    def test_missing_values_sort_as_zero(self):
        ordering = relevance_only()
        assert ordering.sort_key({}) == (0,)

    def test_breadth_first_uses_discovery_order(self):
        ordering = breadth_first()
        assert ordering.sort_key({"discovered": 4}) < ordering.sort_key({"discovered": 9})

    def test_registry_and_lookup(self):
        assert "aggressive_discovery" in ORDERINGS
        assert ordering_by_name("breadth_first").name == "breadth_first"
        with pytest.raises(KeyError):
            ordering_by_name("nope")
        assert crawl_maintenance().columns() == ["lastvisited", "hub_score"]
        assert recovery_ordering().columns()[0] == "numtries"


class TestFrontier:
    def make_frontier(self, ordering=None):
        database = create_focus_database(buffer_pool_pages=64)
        return Frontier(database, ordering or aggressive_discovery()), database

    def test_add_seed_and_pop(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://a.example/1")
        frontier.add_url("http://a.example/2", relevance=0.4)
        assert len(frontier) == 2
        assert frontier.pop_next() == "http://a.example/1"
        assert frontier.pop_next() == "http://a.example/2"
        assert frontier.pop_next() is None

    def test_crawl_table_mirrors_frontier(self):
        frontier, db = self.make_frontier()
        frontier.add_url("http://a.example/x", relevance=0.7)
        rows = db.sql("select url, relevance, status from CRAWL")
        assert rows == [{"url": "http://a.example/x", "relevance": 0.7, "status": "frontier"}]

    def test_duplicate_url_keeps_best_priority(self):
        frontier, _ = self.make_frontier()
        frontier.add_url("http://a.example/x", relevance=0.2)
        frontier.add_url("http://A.example/x", relevance=0.9)  # same page, higher priority
        assert len(frontier) == 1
        assert frontier.entry("http://a.example/x").relevance == 0.9

    def test_record_visit_updates_table_and_serverload(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        frontier.add_url("http://s.example/2", relevance=0.5)
        url = frontier.pop_next()
        frontier.record_visit(url, relevance=0.8, tick=1, kcid=42)
        row = db.sql("select status, relevance, kcid, numtries from CRAWL where url = :u", {"u": url})[0]
        assert row == {"status": "visited", "relevance": 0.8, "kcid": 42, "numtries": 1}
        # second page on the same server sees the increased server load
        entry = frontier.entry("http://s.example/2")
        assert frontier._server_load[entry.sid] == 1

    def test_record_failure_retries_then_gives_up(self):
        frontier, db = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        url = frontier.pop_next()
        frontier.record_failure(url, max_retries=1)
        assert frontier.pop_next() == url  # retried once
        frontier.record_failure(url, max_retries=1)
        assert frontier.pop_next() is None
        assert db.sql("select status from CRAWL")[0]["status"] == "dead"

    def test_permanent_failure_kills_immediately(self):
        frontier, _ = self.make_frontier()
        frontier.add_seed("http://s.example/1")
        url = frontier.pop_next()
        frontier.record_failure(url, max_retries=5, permanent=True)
        assert frontier.pop_next() is None

    def test_boost_raises_priority_of_unvisited_only(self):
        frontier, _ = self.make_frontier()
        frontier.add_url("http://a.example/1", relevance=0.1)
        frontier.add_url("http://a.example/2", relevance=0.5)
        frontier.boost("http://a.example/1", relevance=0.9)
        assert frontier.pop_next() == "http://a.example/1"
        # boosting a visited page is a no-op
        frontier.record_visit("http://a.example/1", relevance=0.9, tick=1)
        frontier.boost("http://a.example/1", relevance=1.0)
        assert frontier.entry("http://a.example/1").status == "visited"

    def test_requeue_after_pop(self):
        frontier, _ = self.make_frontier()
        frontier.add_seed("http://a.example/1")
        url = frontier.pop_next()
        frontier.requeue(url)
        assert frontier.pop_next() == url

    def test_priority_change_reorders_frontier(self):
        frontier, _ = self.make_frontier(relevance_only())
        frontier.add_url("http://a.example/low", relevance=0.2)
        frontier.add_url("http://a.example/high", relevance=0.6)
        frontier.add_url("http://a.example/low", relevance=0.95)
        assert frontier.pop_next() == "http://a.example/low"

    def test_set_ordering_rebuilds_heap(self):
        frontier, _ = self.make_frontier(relevance_only())
        frontier.add_url("http://a.example/1", relevance=0.9)
        frontier.add_url("http://b.example/2", relevance=0.1)
        frontier.set_ordering(breadth_first())
        assert frontier.pop_next() == "http://a.example/1"

    def test_update_scores_for_maintenance_orderings(self):
        frontier, _ = self.make_frontier(crawl_maintenance())
        frontier.add_url("http://a.example/1", relevance=0.5)
        frontier.update_scores("http://a.example/1", hub_score=0.9, authority_score=0.1)
        assert frontier.entry("http://a.example/1").hub_score == 0.9


class TestHeapHygiene:
    """The lazily-invalidated heap must not grow O(total priority churn).

    Every boost pushes a fresh tuple and strands the old one; without
    compaction a distillation-heavy crawl scans (and re-pops) an
    ever-growing graveyard.  The counters under test are the contract:
    heap size stays within 2x the live frontier after a compaction pass,
    and pop_batch's work is O(k + dead-since-last-compaction), not
    O(boost history).
    """

    def make_frontier(self, ordering=None):
        database = create_focus_database(buffer_pool_pages=64)
        return Frontier(database, ordering or relevance_only()), database

    def churn(self, frontier, urls, rounds):
        """A boost-heavy workload: every URL re-prioritised every round."""
        for round_no in range(rounds):
            for i, url in enumerate(urls):
                # Strictly increasing priorities so every boost re-pushes.
                frontier.boost(url, 0.001 * (round_no * len(urls) + i))

    def test_boost_churn_triggers_compaction(self):
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(100)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=10)
        frontier.pop_batch(1)  # compaction runs at checkout time
        stats = frontier.heap_stats()
        assert stats["compactions"] >= 1
        assert stats["heap_size"] <= 2 * stats["frontier_size"] + 1

    def test_pop_batch_work_is_bounded(self):
        """The micro-bench assertion, counter-based: checking out the whole
        frontier after heavy churn scans a bounded number of tuples, far
        fewer than the dead-tuple history an uncompacted heap would walk."""
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(200)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=20)  # ~4000 stranded tuples
        before = frontier.heap_stats()["tuples_scanned"]
        popped = frontier.pop_batch(len(urls))
        scanned = frontier.heap_stats()["tuples_scanned"] - before
        assert len(popped) == len(urls)
        # O(k + dead-since-compaction): well under the ~4200 tuples pushed.
        assert scanned <= 3 * len(urls)

    def test_compaction_preserves_checkout_order(self):
        frontier, _ = self.make_frontier()
        for i in range(100):
            frontier.add_url(f"http://h{i}.example/p", relevance=i / 100.0)
        expected = [f"http://h{i}.example/p" for i in reversed(range(100))]
        self.churn(frontier, [], rounds=0)
        # Strand tuples, then force a rebuild and drain fully.
        for i in range(100):
            frontier.boost(f"http://h{i}.example/p", relevance=(i + 200) / 1000.0)
        frontier._rebuild_heap()
        drained = frontier.pop_batch(100)
        by_priority = sorted(
            range(100), key=lambda i: ((i + 200) / 1000.0, ), reverse=True
        )
        assert drained == [f"http://h{i}.example/p" for i in by_priority]

    def test_small_heaps_never_compact(self):
        frontier, _ = self.make_frontier()
        urls = [f"http://h{i}.example/p" for i in range(8)]
        for url in urls:
            frontier.add_url(url, relevance=0.0)
        self.churn(frontier, urls, rounds=3)
        frontier.pop_batch(1)
        assert frontier.heap_stats()["compactions"] == 0
