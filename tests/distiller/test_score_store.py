"""ScoreTableStore: delta writes must be indistinguishable from rewrites.

The reference semantics are the engine's historical ``truncate() +
insert_many(scores.items())``.  The delta writer must produce the same
logical table contents after any sequence of distillation results —
including after its cache is invalidated mid-sequence (the resume
path) — while writing strictly less WAL on a durable database.
"""

import random

import pytest

from repro.core.schema import create_focus_database
from repro.distiller.score_store import ScoreTableStore


def score_sequence(seed, steps=6, universe=40):
    """A deterministic evolution of score dicts: drift + churn."""
    rng = random.Random(seed)
    scores = {oid: rng.random() for oid in rng.sample(range(universe), 25)}
    sequence = [dict(scores)]
    for _ in range(steps - 1):
        for oid in rng.sample(sorted(scores), len(scores) // 3):
            scores[oid] = rng.random()  # drift a third of them
        for oid in rng.sample(sorted(scores), 3):
            del scores[oid]  # churn: drop a few...
        for oid in rng.sample(range(universe), 4):
            scores.setdefault(oid, rng.random())  # ...and add a few
        sequence.append(dict(scores))
    return sequence


def reference_store(table, scores):
    table.truncate()
    table.insert_many(scores.items())


def table_rows(database, name):
    return sorted(database.table(name).rows())


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_truncate_rewrite_at_every_step(self, seed):
        delta_db = create_focus_database(buffer_pool_pages=64)
        reference_db = create_focus_database(buffer_pool_pages=64)
        store = ScoreTableStore(delta_db)
        for scores in score_sequence(seed):
            store.store("HUBS", scores)
            reference_store(reference_db.table("HUBS"), scores)
            assert table_rows(delta_db, "HUBS") == table_rows(reference_db, "HUBS")

    def test_invalidate_mid_sequence_is_equivalent(self):
        """The resume path: a rebuilt cache continues bit-identically."""
        steady = create_focus_database(buffer_pool_pages=64)
        resumed = create_focus_database(buffer_pool_pages=64)
        steady_store = ScoreTableStore(steady)
        resumed_store = ScoreTableStore(resumed)
        for step, scores in enumerate(score_sequence(7, steps=8)):
            steady_store.store("AUTH", scores)
            if step == 4:
                resumed_store.invalidate()
            resumed_store.store("AUTH", scores)
            assert table_rows(steady, "AUTH") == table_rows(resumed, "AUTH")

    def test_unchanged_scores_are_skipped(self):
        db = create_focus_database(buffer_pool_pages=64)
        store = ScoreTableStore(db)
        scores = {oid: 0.5 for oid in range(20)}
        store.store("HUBS", scores)
        written = store.rows_written
        store.store("HUBS", dict(scores))  # identical result
        assert store.rows_written == written
        assert store.rows_skipped >= 20

    def test_writes_less_wal_than_truncate_rewrite(self, tmp_path):
        """On the workload the delta writer exists for — a large, mostly
        converged score table where successive distillations move only the
        recently crawled tail — it journals far less than a full rewrite."""
        rng = random.Random(11)
        scores = {oid: rng.random() for oid in range(400)}
        sequence = []
        for _ in range(10):
            for oid in rng.sample(range(400), 12):  # a small moving tail
                scores[oid] = rng.random()
            sequence.append(dict(scores))

        delta_db = create_focus_database(path=str(tmp_path / "delta"))
        reference_db = create_focus_database(path=str(tmp_path / "ref"))
        store = ScoreTableStore(delta_db)
        for scores in sequence:
            store.store("HUBS", scores)
            reference_store(reference_db.table("HUBS"), scores)
        assert table_rows(delta_db, "HUBS") == table_rows(reference_db, "HUBS")
        assert (
            delta_db.backend.wal_bytes_written
            < reference_db.backend.wal_bytes_written
        )
        delta_db.close()
        reference_db.close()
