"""Equivalence suite: columnar distillation vs. the reference edge walk.

``compiled_weighted_hits`` over a :class:`CompiledLinkGraph` must agree
with :func:`repro.distiller.hits.weighted_hits` to 1e-9 on hub and
authority scores — including ``None``-weight fallbacks, nepotistic-edge
exclusion, the relevance threshold, and the iteration count — and the
delta-folded graph maintained by :class:`LinkDeltaCache` must agree with
a from-scratch rebuild.
"""

import random

import pytest

from repro.core.schema import create_focus_database
from repro.distiller.compiled import (
    CompiledLinkGraph,
    compile_links,
    compiled_weighted_hits,
)
from repro.distiller.db_distiller import IncrementalDistiller, LinkDeltaCache
from repro.distiller.hits import weighted_hits
from repro.distiller.weights import Link


def random_links(rng: random.Random, n_nodes: int, n_edges: int) -> list[Link]:
    links = []
    for _ in range(n_edges):
        src, dst = rng.randrange(n_nodes), rng.randrange(n_nodes)
        links.append(
            Link(
                oid_src=src,
                sid_src=src % 5,
                oid_dst=dst,
                sid_dst=dst % 5,
                wgt_fwd=None if rng.random() < 0.1 else rng.random(),
                wgt_rev=None if rng.random() < 0.1 else rng.random(),
            )
        )
    return links


def assert_results_match(reference, outcome):
    assert set(outcome.hub_scores) == set(reference.hub_scores)
    assert set(outcome.authority_scores) == set(reference.authority_scores)
    for oid, score in reference.hub_scores.items():
        assert outcome.hub_scores[oid] == pytest.approx(score, abs=1e-9)
    for oid, score in reference.authority_scores.items():
        assert outcome.authority_scores[oid] == pytest.approx(score, abs=1e-9)
    assert outcome.iterations == reference.iterations


class TestCompiledWeightedHits:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_reference_on_random_graphs(self, seed):
        rng = random.Random(seed)
        links = random_links(rng, rng.randint(2, 50), rng.randint(1, 250))
        relevance = {
            oid: rng.random() for oid in range(50) if rng.random() < 0.8
        }
        for iterations in (0, 1, 5, 25):
            reference = weighted_hits(
                links, relevance, rho=0.1, max_iterations=iterations
            )
            outcome = compiled_weighted_hits(
                compile_links(links), relevance, rho=0.1, max_iterations=iterations
            )
            assert_results_match(reference, outcome)

    def test_unweighted_ablation_mode(self):
        rng = random.Random(99)
        links = random_links(rng, 20, 120)
        relevance = {oid: rng.random() for oid in range(20)}
        reference = weighted_hits(links, relevance, use_relevance_weights=False)
        outcome = compiled_weighted_hits(
            compile_links(links), relevance, use_relevance_weights=False
        )
        assert_results_match(reference, outcome)

    def test_empty_and_all_nepotistic_graphs(self):
        assert compiled_weighted_hits(CompiledLinkGraph(), {}).iterations == 0
        nepotistic = [
            Link(oid_src=1, sid_src=7, oid_dst=2, sid_dst=7, wgt_fwd=1.0, wgt_rev=1.0)
        ]
        outcome = compiled_weighted_hits(compile_links(nepotistic), {1: 1.0, 2: 1.0})
        assert outcome.hub_scores == {} and outcome.authority_scores == {}

    def test_update_patches_weights_in_place(self):
        graph = CompiledLinkGraph()
        link = Link(oid_src=1, sid_src=1, oid_dst=2, sid_dst=2, wgt_fwd=0.2, wgt_rev=0.4)
        graph.add(link, key="edge")
        graph.update(
            "edge",
            Link(oid_src=1, sid_src=1, oid_dst=2, sid_dst=2, wgt_fwd=0.9, wgt_rev=0.4),
        )
        _src, _dst, fwd, _rev, _oids = graph.arrays()
        assert fwd[0] == 0.9
        # Unknown (e.g. nepotistic, never-compiled) keys are ignored.
        graph.update("missing", link)


class TestDeltaFoldedGraph:
    def _crawl_tables(self):
        database = create_focus_database(buffer_pool_pages=256)
        return database, database.table("LINK")

    def _insert(self, table, links):
        return table.insert_many(
            [
                (
                    link.oid_src,
                    link.sid_src,
                    link.oid_dst,
                    link.sid_dst,
                    link.wgt_fwd,
                    link.wgt_rev,
                )
                for link in links
            ]
        )

    def test_incremental_fold_matches_full_rebuild(self):
        rng = random.Random(7)
        database, table = self._crawl_tables()
        cache = LinkDeltaCache(table, compiled=True)
        relevance = {oid: rng.random() for oid in range(40)}
        all_links = []
        for _round in range(5):
            batch = random_links(rng, 40, rng.randint(5, 60))
            rids = self._insert(table, batch)
            all_links.extend(batch)
            # Patch a few weights in place, as the crawl's E_F refresh does.
            for rid, link in list(zip(rids, batch))[:3]:
                table.update_column("wgt_fwd", [(rid, 0.5)])
                cache.note_updated([rid])
                all_links[all_links.index(link)] = Link(
                    oid_src=link.oid_src,
                    sid_src=link.sid_src,
                    oid_dst=link.oid_dst,
                    sid_dst=link.sid_dst,
                    wgt_fwd=0.5,
                    wgt_rev=link.wgt_rev,
                )
            cache.refresh()
            reference = compiled_weighted_hits(compile_links(all_links), relevance)
            outcome = compiled_weighted_hits(cache.graph, relevance)
            assert_results_match(reference, outcome)
        assert len(cache) == len(all_links)

    def test_restore_rebuilds_identical_graph(self):
        rng = random.Random(11)
        database, table = self._crawl_tables()
        cache = LinkDeltaCache(table, compiled=True)
        self._insert(table, random_links(rng, 30, 80))
        cache.refresh()
        state = cache.state_snapshot()
        relevance = {oid: rng.random() for oid in range(30)}
        reference = compiled_weighted_hits(cache.graph, relevance)

        restored = LinkDeltaCache(table, compiled=True)
        restored.restore_state(state)
        restored.refresh()
        outcome = compiled_weighted_hits(restored.graph, relevance)
        assert outcome.hub_scores == reference.hub_scores  # bit for bit
        assert outcome.authority_scores == reference.authority_scores

    def test_incremental_distiller_backends_agree(self):
        rng = random.Random(13)
        database, table = self._crawl_tables()
        links = random_links(rng, 25, 120)
        self._insert(table, links)
        relevance = {oid: rng.random() for oid in range(25)}
        python_scores = IncrementalDistiller(database, backend="python").run(relevance)
        numpy_scores = IncrementalDistiller(database, backend="numpy").run(relevance)
        assert_results_match(python_scores, numpy_scores)

    def test_unknown_backend_rejected(self):
        database, _table = self._crawl_tables()
        with pytest.raises(ValueError):
            IncrementalDistiller(database, backend="fortran")
