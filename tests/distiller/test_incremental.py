"""Tests for delta-mode distillation (LinkDeltaCache / IncrementalDistiller)."""

import pytest

from repro.core.schema import create_focus_database
from repro.distiller.db_distiller import IncrementalDistiller, LinkDeltaCache
from repro.distiller.hits import weighted_hits
from repro.distiller.weights import Link


def link_row(src, dst, fwd=0.8, rev=0.9, sid_src=None, sid_dst=None):
    return {
        "oid_src": src,
        "sid_src": sid_src if sid_src is not None else src * 10,
        "oid_dst": dst,
        "sid_dst": sid_dst if sid_dst is not None else dst * 10,
        "wgt_fwd": fwd,
        "wgt_rev": rev,
    }


def full_links(database):
    table = database.table("LINK")
    return [
        Link(
            oid_src=row["oid_src"],
            sid_src=row["sid_src"],
            oid_dst=row["oid_dst"],
            sid_dst=row["sid_dst"],
            wgt_fwd=row["wgt_fwd"],
            wgt_rev=row["wgt_rev"],
        )
        for row in database.table("LINK").rows_as_dicts()
    ] if table else []


class TestLinkDeltaCache:
    def test_folds_only_new_rows(self):
        database = create_focus_database(buffer_pool_pages=128)
        table = database.table("LINK")
        cache = LinkDeltaCache(table)
        table.insert_many([link_row(1, 2), link_row(2, 3)])
        assert len(cache.refresh()) == 2
        table.insert_many([link_row(3, 4)])
        links = cache.refresh()
        assert len(links) == 3
        assert {(link.oid_src, link.oid_dst) for link in links} == {(1, 2), (2, 3), (3, 4)}

    def test_notes_in_place_weight_updates(self):
        database = create_focus_database(buffer_pool_pages=128)
        table = database.table("LINK")
        cache = LinkDeltaCache(table)
        rids = table.insert_many([link_row(1, 2, fwd=0.1), link_row(2, 3, fwd=0.2)])
        cache.refresh()
        table.update_rows([(rids[0], {"wgt_fwd": 0.95})])
        cache.note_updated([rids[0]])
        by_edge = {(link.oid_src, link.oid_dst): link for link in cache.refresh()}
        assert by_edge[(1, 2)].wgt_fwd == 0.95
        assert by_edge[(2, 3)].wgt_fwd == 0.2

    def test_cache_order_matches_table_scan_order(self):
        database = create_focus_database(buffer_pool_pages=128)
        table = database.table("LINK")
        cache = LinkDeltaCache(table)
        for i in range(40):
            table.insert_many([link_row(i, i + 1)])
            cache.refresh()
        cached = [(link.oid_src, link.oid_dst) for link in cache.refresh()]
        scanned = [(link.oid_src, link.oid_dst) for link in full_links(database)]
        assert cached == scanned


class TestIncrementalDistiller:
    def test_agrees_with_full_recomputation_to_1e9(self):
        database = create_focus_database(buffer_pool_pages=256)
        table = database.table("LINK")
        distiller = IncrementalDistiller(database, rho=0.1, max_iterations=5)
        relevance = {}
        # Grow the graph in three waves, distilling after each, with an
        # in-place weight refresh in between (as the crawler does).
        rng_edges = [(i, (i * 7) % 23 + 1) for i in range(1, 60)]
        waves = [rng_edges[:20], rng_edges[20:40], rng_edges[40:]]
        rid_of_first_wave = None
        for wave_index, wave in enumerate(waves):
            rids = table.insert_many(
                link_row(src, dst, fwd=0.5 + 0.01 * src, rev=0.4 + 0.01 * dst)
                for src, dst in wave
                if src != dst
            )
            if wave_index == 0:
                rid_of_first_wave = rids[0]
            for src, dst in wave:
                relevance[src] = 0.6
                relevance[dst] = 0.7
            if wave_index == 1 and rid_of_first_wave is not None:
                table.update_rows([(rid_of_first_wave, {"wgt_fwd": 0.99})])
                distiller.note_updated([rid_of_first_wave])
            incremental = distiller.run(dict(relevance))
            full = weighted_hits(
                full_links(database), relevance=dict(relevance), rho=0.1, max_iterations=5
            )
            assert set(incremental.hub_scores) == set(full.hub_scores)
            for oid, score in full.hub_scores.items():
                assert incremental.hub_scores[oid] == pytest.approx(score, abs=1e-9)
            for oid, score in full.authority_scores.items():
                assert incremental.authority_scores[oid] == pytest.approx(score, abs=1e-9)

    def test_empty_table_runs_clean(self):
        database = create_focus_database(buffer_pool_pages=64)
        distiller = IncrementalDistiller(database)
        result = distiller.run({})
        assert result.hub_scores == {} and result.authority_scores == {}
