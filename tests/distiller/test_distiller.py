"""Tests for relevance-weighted HITS and its database-backed implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import create_crawl_tables
from repro.distiller.db_distiller import IndexLookupDistiller, JoinDistiller
from repro.distiller.hits import weighted_hits
from repro.distiller.weights import Link, assign_weights, backward_weight, forward_weight
from repro.minidb import Database


def star_graph(hub_count: int = 3, authority_count: int = 4) -> tuple[list[Link], dict[int, float]]:
    """Hubs 100..10x each link to every authority 200..20y (all relevant)."""
    links = []
    relevance = {}
    for h in range(hub_count):
        hub_oid = 100 + h
        relevance[hub_oid] = 0.8
        for a in range(authority_count):
            auth_oid = 200 + a
            relevance[auth_oid] = 0.9
            links.append(
                Link(oid_src=hub_oid, sid_src=h, oid_dst=auth_oid, sid_dst=1000 + a,
                     wgt_fwd=0.9, wgt_rev=0.8)
            )
    return links, relevance


class TestEdgeWeights:
    def test_forward_and_backward_weights_clamped(self):
        assert forward_weight(0.7) == 0.7
        assert forward_weight(1.5) == 1.0
        assert forward_weight(-0.2) == 0.0
        assert forward_weight(None, default=0.3) == 0.3
        assert backward_weight(0.4) == 0.4

    def test_assign_weights_uses_relevance_map(self):
        links = [Link(1, 10, 2, 20), Link(2, 20, 3, 30)]
        weighted = assign_weights(links, {1: 0.9, 2: 0.5}, default_unknown=0.1)
        assert weighted[0].wgt_rev == 0.9  # source relevance
        assert weighted[0].wgt_fwd == 0.5  # destination relevance
        assert weighted[1].wgt_fwd == 0.1  # unknown destination

    def test_nepotism_detection(self):
        assert Link(1, 5, 2, 5).is_nepotistic
        assert not Link(1, 5, 2, 6).is_nepotistic


class TestWeightedHits:
    def test_star_graph_scores_and_normalisation(self):
        links, relevance = star_graph()
        result = weighted_hits(links, relevance, rho=0.1)
        assert sum(result.hub_scores.values()) == pytest.approx(1.0)
        assert sum(result.authority_scores.values()) == pytest.approx(1.0)
        assert set(result.hub_scores) == {100, 101, 102}
        assert set(result.authority_scores) == {200, 201, 202, 203}
        # Symmetric graph ⇒ symmetric scores.
        hubs = list(result.hub_scores.values())
        assert max(hubs) == pytest.approx(min(hubs))

    def test_nepotistic_edges_excluded(self):
        links = [Link(1, 7, 2, 7, 0.9, 0.9), Link(3, 8, 2, 9, 0.9, 0.9)]
        relevance = {1: 0.9, 2: 0.9, 3: 0.9}
        result = weighted_hits(links, relevance)
        assert 1 not in result.hub_scores  # its only edge was same-server
        assert 3 in result.hub_scores

    def test_rho_filter_drops_irrelevant_authorities(self):
        links, relevance = star_graph()
        relevance[200] = 0.01  # below rho
        result = weighted_hits(links, relevance, rho=0.1)
        assert 200 not in result.authority_scores

    def test_relevance_weighting_demotes_offtopic_popular_pages(self):
        """The paper's motivation: an off-topic but universally cited page
        should dominate classical HITS yet be demoted by weighted HITS."""
        links, relevance = star_graph(hub_count=4, authority_count=2)
        popular = 999
        relevance[popular] = 0.15  # barely above rho, clearly off-topic
        for h in range(4):
            links.append(Link(100 + h, h, popular, 5000, wgt_fwd=0.15, wgt_rev=0.8))
        weighted = weighted_hits(links, relevance, rho=0.1)
        unweighted = weighted_hits(links, relevance, rho=0.1, use_relevance_weights=False)
        assert weighted.authority_scores[popular] < unweighted.authority_scores[popular]

    def test_empty_graph(self):
        result = weighted_hits([], {})
        assert result.hub_scores == {} and result.iterations == 0

    def test_top_hubs_and_threshold(self):
        links, relevance = star_graph()
        result = weighted_hits(links, relevance)
        top = result.top_hubs(2)
        assert len(top) == 2
        assert result.hub_threshold(0.9) > 0

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 8), st.integers(9, 18)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_scores_always_normalised_property(self, edges):
        links = [Link(s, s, d, d + 100, 0.8, 0.8) for s, d in edges]
        relevance = {oid: 0.8 for pair in edges for oid in pair}
        result = weighted_hits(links, relevance, rho=0.1, max_iterations=5)
        if result.authority_scores:
            assert sum(result.authority_scores.values()) == pytest.approx(1.0)
        if result.hub_scores:
            assert sum(result.hub_scores.values()) == pytest.approx(1.0)
        assert all(s >= 0 for s in result.hub_scores.values())


def build_crawl_database(links, relevance) -> Database:
    database = Database(buffer_pool_pages=256)
    create_crawl_tables(database)
    crawl = database.table("CRAWL")
    sid_of = {}
    for link in links:
        sid_of[link.oid_src] = link.sid_src
        sid_of.setdefault(link.oid_dst, link.sid_dst)
    for oid, rel in relevance.items():
        crawl.insert(
            {
                "oid": oid,
                "url": f"http://site{oid}.example/",
                "sid": sid_of.get(oid, oid),
                "relevance": rel,
                "numtries": 1,
                "serverload": 0,
                "lastvisited": 1,
                "kcid": None,
                "status": "visited",
            }
        )
    database.table("LINK").insert_many(
        {
            "oid_src": l.oid_src,
            "sid_src": l.sid_src,
            "oid_dst": l.oid_dst,
            "sid_dst": l.sid_dst,
            "wgt_fwd": l.wgt_fwd,
            "wgt_rev": l.wgt_rev,
        }
        for l in links
    )
    return database


class TestDbDistillers:
    @pytest.mark.parametrize("distiller_cls", [JoinDistiller, IndexLookupDistiller])
    def test_db_distiller_matches_in_memory_reference(self, distiller_cls):
        links, relevance = star_graph(hub_count=4, authority_count=3)
        # Add an asymmetry so the scores are not all equal.
        links.append(Link(100, 0, 205, 4000, 0.9, 0.8))
        relevance[205] = 0.9
        reference = weighted_hits(links, relevance, rho=0.1, max_iterations=3)
        database = build_crawl_database(links, relevance)
        distiller = distiller_cls(database, rho=0.1)
        result = distiller.run(iterations=3)
        assert set(result.hub_scores) == set(reference.hub_scores)
        for oid, score in reference.hub_scores.items():
            assert result.hub_scores[oid] == pytest.approx(score, abs=1e-9)
        for oid, score in reference.authority_scores.items():
            assert result.authority_scores[oid] == pytest.approx(score, abs=1e-9)

    def test_join_and_lookup_agree_with_each_other(self):
        links, relevance = star_graph(hub_count=5, authority_count=4)
        join_result = JoinDistiller(build_crawl_database(links, relevance), rho=0.1).run(2)
        lookup_result = IndexLookupDistiller(build_crawl_database(links, relevance), rho=0.1).run(2)
        for oid in join_result.authority_scores:
            assert join_result.authority_scores[oid] == pytest.approx(
                lookup_result.authority_scores[oid], abs=1e-9
            )

    def test_cost_breakdown_populated(self):
        links, relevance = star_graph()
        database = build_crawl_database(links, relevance)
        lookup = IndexLookupDistiller(database, rho=0.1)
        lookup.run(iterations=1)
        assert lookup.cost.iterations == 1
        assert lookup.cost.total() > 0
        join_db = build_crawl_database(links, relevance)
        join = JoinDistiller(join_db, rho=0.1)
        join.run(iterations=1)
        assert join.cost.join_cost > 0

    def test_empty_link_table_is_handled(self):
        database = build_crawl_database([], {})
        result = JoinDistiller(database).run(iterations=2)
        assert result.hub_scores == {}
