"""Unit tests for the shared LRU cache used across the crawl hot paths."""

from repro.core.caching import LRUCache


class TestLRUCache:
    def test_get_put_and_lru_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b" (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.hits == 3 and cache.misses == 1

    def test_put_replaces_and_refreshes(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # replace refreshes recency
        cache.put("c", 3)   # evicts "b"
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_peek_does_not_refresh_or_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # "a" was not refreshed by peek -> evicted
        assert cache.peek("a") is None

    def test_raw_exposes_backing_dict_below_capacity(self):
        cache = LRUCache(8)
        cache.put(1, "x")
        assert cache.raw.get(1) == "x"
        assert cache.raw.get(2) is None
        assert 1 in cache and 2 not in cache
        assert list(cache) == [1]

    def test_clear(self):
        cache = LRUCache(4)
        cache.put(1, "x")
        cache.clear()
        assert len(cache) == 0
