"""Crash-recovery: a killed crawl, resumed from its checkpoint, must be
indistinguishable from one that never died.

The contract under test (the PR's acceptance criterion): kill the crawl
process at an arbitrary point, reopen the durable database, resume — and
the combined run visits the identical page sequence with identical
relevance floats as an uninterrupted run, to 1e-9 (in fact bit for bit).
"""

import pytest

from repro.core.checkpoint import CheckpointManager
from repro.core.config import FocusConfig
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.minidb import Database
from repro.minidb.errors import StorageError
from repro.webgraph.fetch import Fetcher

GOOD = "recreation/cycling"

#: Shared crawl shape: small enough to run four scenarios, big enough to
#: cross several distillation and checkpoint boundaries.
MAX_PAGES = 140
CHECKPOINT_EVERY = 30
FETCH_FAILURE_SEED = 3


class KillSwitch(Exception):
    """Stands in for SIGKILL: aborts the crawl at an arbitrary fetch."""


def build_system(web) -> FocusSystem:
    config = FocusConfig(good_topics=(GOOD,), examples_per_leaf=12, seed_count=8)
    system = FocusSystem.from_web(web, [GOOD], config)
    system.train()
    return system


def crawl_config(engine: str) -> CrawlerConfig:
    return CrawlerConfig(
        max_pages=MAX_PAGES,
        distill_every=40,
        checkpoint_every=CHECKPOINT_EVERY,
        engine=engine,
        batch_size=4 if engine == "batched" else 1,
    )


def kill_fetcher_after(monkeypatch, attempts: int) -> None:
    """Raise :class:`KillSwitch` out of the Nth fetch attempt."""
    real_fetch = Fetcher.fetch
    state = {"calls": 0}

    def killing(self, url):
        state["calls"] += 1
        if state["calls"] > attempts:
            raise KillSwitch(f"killed at fetch attempt {attempts}")
        return real_fetch(self, url)

    monkeypatch.setattr(Fetcher, "fetch", killing)


@pytest.fixture(scope="module")
def checkpoint_system(small_web):
    return build_system(small_web)


@pytest.fixture(scope="module")
def reference_batched(checkpoint_system):
    """The uninterrupted batched crawl every resume scenario must reproduce."""
    return checkpoint_system.crawl(
        crawler_config=crawl_config("batched"), fetch_failure_seed=FETCH_FAILURE_SEED
    )


@pytest.fixture(scope="module")
def reference_serial(checkpoint_system):
    return checkpoint_system.crawl(
        crawler_config=crawl_config("serial"), fetch_failure_seed=FETCH_FAILURE_SEED
    )


def assert_traces_match(resumed, reference):
    assert resumed.trace.fetched_urls == reference.trace.fetched_urls
    resumed_relevance = resumed.trace.relevance_series()
    reference_relevance = reference.trace.relevance_series()
    assert max(
        abs(a - b) for a, b in zip(resumed_relevance, reference_relevance)
    ) <= 1e-9
    assert resumed_relevance == reference_relevance  # in fact bit for bit
    assert resumed.trace.failed_urls == reference.trace.failed_urls
    assert resumed.trace.distillations == reference.trace.distillations
    assert len(resumed.database.table("CRAWL")) == len(reference.database.table("CRAWL"))
    assert len(resumed.database.table("LINK")) == len(reference.database.table("LINK"))


class TestCrashResume:
    # Kill points straddle the checkpoint cadence: before the first
    # periodic save (only the initial checkpoint exists), mid-interval
    # (a WAL tail must be discarded), and deep into the crawl.
    @pytest.mark.parametrize("kill_after", [12, 47, 101])
    def test_batched_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, reference_batched, tmp_path, monkeypatch, kill_after
    ):
        kill_fetcher_after(monkeypatch, kill_after)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=crawl_config("batched"),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference_batched)
        resumed.database.close()

    def test_serial_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, reference_serial, tmp_path, monkeypatch
    ):
        kill_fetcher_after(monkeypatch, 58)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=crawl_config("serial"),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference_serial)
        resumed.database.close()

    def test_resume_on_a_freshly_built_system(
        self, small_web, reference_batched, tmp_path, monkeypatch
    ):
        """The real crash story: the process died, everything in memory is
        gone, and a *new* process (same web/config seeds) picks the crawl
        up from disk alone."""
        doomed = build_system(small_web)
        kill_fetcher_after(monkeypatch, 70)
        with pytest.raises(KillSwitch):
            doomed.crawl(
                crawler_config=crawl_config("batched"),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()
        del doomed

        fresh = build_system(small_web)
        resumed = fresh.crawl(resume_from=str(tmp_path / "crawl"))
        assert_traces_match(resumed, reference_batched)
        resumed.database.close()

    def test_numpy_backend_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, tmp_path, monkeypatch
    ):
        """Kill/resume under score_backend="numpy": the compiled scorer and
        the columnar link graph are pure caches, so the resumed crawl is
        bit-identical to an uninterrupted numpy-backend crawl."""
        config = crawl_config("batched")
        config.score_backend = "numpy"
        reference = checkpoint_system.crawl(
            crawler_config=config, fetch_failure_seed=FETCH_FAILURE_SEED
        )
        killed_config = crawl_config("batched")
        killed_config.score_backend = "numpy"
        kill_fetcher_after(monkeypatch, 63)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=killed_config,
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.crawler.config.score_backend == "numpy"
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference)
        resumed.database.close()

    def test_async_fetch_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, reference_batched, tmp_path, monkeypatch
    ):
        """Kill/resume under fetch_mode="async": transport draws happen at
        prepare time in checkout order and commits in checkout order, so
        the asyncio pipeline resumes bit-identically — and, under the
        simulated transport, equals the threaded reference exactly."""
        config = crawl_config("batched")
        config.fetch_mode = "async"
        kill_fetcher_after(monkeypatch, 47)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=config,
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.crawler.config.fetch_mode == "async"
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference_batched)
        resumed.database.close()

    def test_latency_transport_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, tmp_path, monkeypatch
    ):
        """The latency transport's own RNG stream is part of the checkpoint:
        a resumed latency crawl continues the exact delay/timeout draws."""
        def latency_config():
            config = crawl_config("batched")
            config.fetch_mode = "async"
            config.transport = "latency"
            # time_scale=0: draws are made and checkpointed, sleeps skipped.
            config.transport_options = {
                "mean_latency_ms": 2.0,
                "timeout_rate": 0.05,
                "seed": 9,
                "time_scale": 0.0,
            }
            return config

        reference = checkpoint_system.crawl(
            crawler_config=latency_config(), fetch_failure_seed=FETCH_FAILURE_SEED
        )
        kill_fetcher_after(monkeypatch, 52)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=latency_config(),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.crawler.config.transport == "latency"
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference)
        resumed.database.close()

    def test_time_based_checkpoints_trigger_and_resume(
        self, checkpoint_system, reference_batched, tmp_path, monkeypatch
    ):
        """checkpoint_interval_s alone (checkpoint_every=0) saves resume
        points at round boundaries and does not perturb the crawl."""
        def timed_config():
            config = crawl_config("batched")
            config.checkpoint_every = 0
            config.checkpoint_interval_s = 1e-6  # every round is "due"
            return config

        result = checkpoint_system.crawl(
            crawler_config=timed_config(),
            fetch_failure_seed=FETCH_FAILURE_SEED,
            checkpoint_dir=str(tmp_path / "undisturbed"),
        )
        assert_traces_match(result, reference_batched)
        result.database.close()
        reopened, saved = CheckpointManager.load(str(tmp_path / "undisturbed"))
        reopened.close()
        # The initial save plus at least one time-triggered round save.
        assert saved.checkpoints_saved > 1
        assert saved.config.checkpoint_interval_s == 1e-6

        kill_fetcher_after(monkeypatch, 61)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=timed_config(),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "killed"),
            )
        monkeypatch.undo()
        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "killed"))
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference_batched)
        resumed.database.close()

    def test_checkpointing_does_not_perturb_the_crawl(
        self, checkpoint_system, reference_batched, tmp_path
    ):
        """Durable storage + periodic checkpoints are pure overhead: an
        undisturbed checkpointed crawl equals the in-memory reference."""
        result = checkpoint_system.crawl(
            crawler_config=crawl_config("batched"),
            fetch_failure_seed=FETCH_FAILURE_SEED,
            checkpoint_dir=str(tmp_path / "crawl"),
        )
        assert_traces_match(result, reference_batched)
        snapshot = result.database.io_snapshot()
        assert snapshot["wal_bytes_written"] > 0
        result.database.close()


class TestPrefetchCrashResume:
    """Kill/resume with cross-round prefetch active.

    In-flight speculation is never checkpointed: every save drains the
    speculative stream and rewinds the transport/server RNG draws first,
    so a resumed prefetch crawl replays them canonically.  The combined
    run must equal the uninterrupted *non-prefetch* reference bit for
    bit — the strongest form of the confirm-or-replay contract.
    """

    @staticmethod
    def prefetch_config() -> CrawlerConfig:
        config = crawl_config("batched")
        config.fetch_mode = "async"
        config.prefetch = True
        return config

    # Arbitrary kill points: mid-round, mid-speculation, straddling the
    # checkpoint cadence — speculative prepares consume fetch attempts
    # early, so the same counts land at different pipeline states than
    # in the non-prefetch async test above.
    @pytest.mark.parametrize("kill_after", [12, 47, 83, 101])
    def test_prefetch_killed_and_resumed_matches_uninterrupted(
        self, checkpoint_system, reference_batched, tmp_path, monkeypatch, kill_after
    ):
        kill_fetcher_after(monkeypatch, kill_after)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=self.prefetch_config(),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.crawler.config.prefetch
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference_batched)
        resumed.database.close()

    def test_prefetch_latency_killed_and_resumed(
        self, checkpoint_system, tmp_path, monkeypatch
    ):
        """Same contract through the latency transport: its own RNG stream
        (and the speculative draws taken from it) checkpoint canonically.
        The reference is the *non-prefetch* latency crawl."""
        def latency_config(prefetch: bool) -> CrawlerConfig:
            config = crawl_config("batched")
            config.fetch_mode = "async"
            config.prefetch = prefetch
            config.transport = "latency"
            # time_scale=0: draws are made and checkpointed, sleeps skipped.
            config.transport_options = {
                "mean_latency_ms": 2.0,
                "timeout_rate": 0.05,
                "seed": 9,
                "time_scale": 0.0,
            }
            return config

        reference = checkpoint_system.crawl(
            crawler_config=latency_config(False), fetch_failure_seed=FETCH_FAILURE_SEED
        )
        kill_fetcher_after(monkeypatch, 52)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=latency_config(True),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.crawler.config.prefetch
        assert resumed.pages_fetched() == MAX_PAGES
        assert_traces_match(resumed, reference)
        resumed.database.close()


class TestCrawlArgumentGuards:
    def test_checkpoint_dir_refuses_a_directory_already_holding_a_crawl(
        self, checkpoint_system, tmp_path
    ):
        config = crawl_config("batched")
        config.max_pages = 20
        checkpoint_system.crawl(
            crawler_config=config,
            fetch_failure_seed=FETCH_FAILURE_SEED,
            checkpoint_dir=str(tmp_path / "crawl"),
        )
        with pytest.raises(ValueError, match="already holds a crawl checkpoint"):
            checkpoint_system.crawl(
                crawler_config=crawl_config("batched"),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )

    def test_resume_from_rejects_conflicting_arguments(self, checkpoint_system, tmp_path):
        with pytest.raises(ValueError, match="crawler_config"):
            checkpoint_system.crawl(
                resume_from=str(tmp_path / "crawl"),
                crawler_config=crawl_config("batched"),
            )
        with pytest.raises(ValueError, match="seeds"):
            checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"), seeds=["http://x"])


class TestCheckpointManager:
    def test_requires_a_durable_database(self, checkpoint_system):
        with pytest.raises(StorageError, match="durable"):
            CheckpointManager(
                Database(), crawler=None, fetcher=None, servers=None,
                seeds=[], good_topics=[],
            )

    def test_load_refuses_a_database_without_a_checkpoint(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            db.checkpoint()
        with pytest.raises(StorageError, match="no crawl checkpoint"):
            CheckpointManager.load(str(tmp_path / "db"))

    def test_resume_continues_checkpointing(
        self, checkpoint_system, tmp_path, monkeypatch
    ):
        """A resumed crawl can itself be killed and resumed again."""
        kill_fetcher_after(monkeypatch, 40)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(
                crawler_config=crawl_config("batched"),
                fetch_failure_seed=FETCH_FAILURE_SEED,
                checkpoint_dir=str(tmp_path / "crawl"),
            )
        monkeypatch.undo()

        kill_fetcher_after(monkeypatch, 45)
        with pytest.raises(KillSwitch):
            checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        monkeypatch.undo()

        resumed = checkpoint_system.crawl(resume_from=str(tmp_path / "crawl"))
        assert resumed.pages_fetched() == MAX_PAGES
        resumed.database.close()
