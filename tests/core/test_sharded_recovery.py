"""Sharded crash-recovery: kill a shard fleet anywhere, resume bit-identically.

The coordinator checkpoint is a barrier protocol — sync every shard WAL,
atomically publish the coordinator manifest, then snapshot each shard
database — and the claim under test is *total*: a crash at ANY counted
I/O point of any shard database, or inside the manifest write itself,
leaves a state from which ``FocusSystem.resume`` reproduces the
uninterrupted crawl bit for bit (page sequence and relevance floats).

Crash points are driven by the :mod:`repro.minidb.testing` fault
injector (PR 5's harness) through ``StorageConfig.ops_factory`` — one
injector per shard database, so one shard's death never corrupts
another's I/O accounting.
"""

import pytest

from repro.core.config import FocusConfig, JobSpec
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.minidb import StorageConfig
from repro.minidb.testing import FaultInjector, SimulatedCrash, hard_close

GOOD = "recreation/cycling"
MAX_PAGES = 80
CHECKPOINT_EVERY = 20
SHARDS = 2


class RecordingFactory:
    """A picklable ``StorageConfig.ops_factory`` that keeps its mints.

    The factory rides inside the crawler config, which the coordinator
    manifest pickles; the mint list stays process-local (a resumed run
    starts a fresh, benign registry).
    """

    def __init__(self):
        self.minted = []

    def __call__(self) -> FaultInjector:
        injector = FaultInjector()
        self.minted.append(injector)
        return injector

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.minted = []


def sharded_config(factory=None) -> CrawlerConfig:
    return CrawlerConfig(
        engine="sharded",
        shards=SHARDS,
        shard_runner="inprocess",
        max_pages=MAX_PAGES,
        batch_size=8,
        distill_every=30,
        checkpoint_every=CHECKPOINT_EVERY,
        storage=StorageConfig(ops_factory=factory) if factory is not None else None,
    )


def start_durable(system, path, factory=None):
    return system.start(
        JobSpec(
            max_pages=MAX_PAGES,
            checkpoint_dir=str(path),
            crawler=sharded_config(factory),
        )
    )


def trace_key(result):
    trace = result.trace
    return (
        [(v.tick, v.url, v.relevance, v.best_leaf_cid) for v in trace.visits],
        trace.failed_urls,
        trace.distillations,
    )


def kill_fleet(handle) -> None:
    """A process kill: release file handles with no orderly shutdown I/O."""
    for worker in handle.crawler.engine.runner.workers:
        if worker.database.backend.persistent:
            hard_close(worker.database)


@pytest.fixture(scope="module")
def sharded_system(small_web):
    config = FocusConfig(good_topics=(GOOD,), examples_per_leaf=12, seed_count=8)
    system = FocusSystem.from_web(small_web, [GOOD], config)
    system.train()
    return system


@pytest.fixture(scope="module")
def reference(sharded_system, tmp_path_factory):
    """The uninterrupted durable sharded crawl every scenario must match."""
    path = tmp_path_factory.mktemp("sharded-ref") / "crawl"
    handle = start_durable(sharded_system, path)
    result = handle.run()
    key = trace_key(result)
    handle.close()
    return key


class TestAbandonAndResume:
    def test_step_abandon_resume_is_bit_identical(
        self, sharded_system, reference, tmp_path
    ):
        """Stop cleanly mid-crawl, throw the coordinator away, resume from
        disk: the combined trace equals the uninterrupted run's."""
        path = tmp_path / "crawl"
        handle = start_durable(sharded_system, path)
        handle.step(rounds=4)
        assert 0 < handle.trace.pages_fetched < MAX_PAGES
        handle.crawler.shutdown()

        resumed = sharded_system.resume(str(path))
        result = resumed.run()
        assert result.pages_fetched() == MAX_PAGES
        assert trace_key(result) == reference
        resumed.close()

    def test_resume_refuses_double_start(self, sharded_system, reference, tmp_path):
        path = tmp_path / "crawl"
        handle = start_durable(sharded_system, path)
        handle.crawler.shutdown()
        with pytest.raises(ValueError, match="resume"):
            start_durable(sharded_system, path)


class TestShardCrashTorture:
    def test_crash_at_any_shard_io_point_recovers(self, sharded_system, reference, tmp_path):
        """Sweep injected crashes across one shard's I/O timeline — WAL
        appends mid-round, the fsync/replace window inside its periodic
        checkpoint — and resume to a bit-identical crawl every time."""
        # Probe: run the workload uncrashed to map the I/O timeline.
        probe_factory = RecordingFactory()
        handle = start_durable(sharded_system, tmp_path / "probe", probe_factory)
        probe = probe_factory.minted[1]  # shard 1's injector
        start_ops = probe.op_count  # I/O spent by start() (initial checkpoint)
        handle.run()
        handle.close()
        total_ops = probe.op_count
        assert total_ops > start_ops

        # Crash points: first checkpoint-window ops after start (fsync and
        # the snapshot's atomic replace) plus evenly spread WAL writes.
        windows = [
            e.index for e in probe.events
            if e.index > start_ops and e.kind in ("fsync", "replace")
        ]
        crash_points = sorted(
            {
                windows[0],
                windows[len(windows) // 2],
                start_ops + (total_ops - start_ops) // 3,
                start_ops + 2 * (total_ops - start_ops) // 3,
            }
        )
        for crash_at in crash_points:
            path = tmp_path / f"crash-{crash_at}"
            factory = RecordingFactory()
            handle = start_durable(sharded_system, path, factory)
            factory.minted[1].crash_at = crash_at
            with pytest.raises(SimulatedCrash):
                handle.run()
            kill_fleet(handle)

            resumed = sharded_system.resume(str(path))
            result = resumed.run()
            assert result.pages_fetched() == MAX_PAGES, f"crash_at={crash_at}"
            assert trace_key(result) == reference, f"crash_at={crash_at}"
            resumed.close()


class TestManifestCrashTorture:
    @pytest.mark.parametrize("crash_at", [0, 1, 2])
    def test_crash_inside_manifest_write_recovers(
        self, sharded_system, reference, tmp_path, crash_at
    ):
        """Kill the coordinator inside write_coordinator_manifest — a torn
        tmp-file write, after the fsync, before the atomic rename — and the
        previous manifest stays authoritative: resume is bit-identical."""
        path = tmp_path / "crawl"
        handle = start_durable(sharded_system, path)
        # Arm the manager's manifest FileOps; shard databases keep real I/O.
        handle.manager.ops = FaultInjector(crash_at=crash_at)
        with pytest.raises(SimulatedCrash):
            handle.run()
        kill_fleet(handle)

        resumed = sharded_system.resume(str(path))
        result = resumed.run()
        assert result.pages_fetched() == MAX_PAGES
        assert trace_key(result) == reference
        resumed.close()
