"""StorageConfig: the consolidated storage policy and its deprecation shims."""

import dataclasses

import pytest

from repro.core.schema import create_focus_database
from repro.crawler.focused import CrawlerConfig
from repro.minidb import Database, StorageConfig


class TestStorageConfig:
    def test_defaults_and_validation(self):
        config = StorageConfig()
        assert config.buffer_pool_pages is None
        assert config.wal_fsync_batch == 0
        assert config.compact_every == 1
        assert config.compact_min_garbage_ratio == 0.5
        with pytest.raises(ValueError):
            StorageConfig(buffer_pool_pages=0)
        with pytest.raises(ValueError):
            StorageConfig(wal_fsync_batch=-1)
        with pytest.raises(ValueError):
            StorageConfig(compact_min_garbage_ratio=1.5)

    def test_pool_pages_defers_to_caller_default(self):
        assert StorageConfig().pool_pages(512) == 512
        assert StorageConfig(buffer_pool_pages=64).pool_pages(512) == 64

    def test_replace_returns_new_frozen_value(self):
        config = StorageConfig(wal_fsync_batch=8)
        bumped = config.replace(compact_every=3)
        assert bumped.wal_fsync_batch == 8
        assert bumped.compact_every == 3
        assert config.compact_every == 1
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.wal_fsync_batch = 2

    def test_dict_round_trip(self):
        config = StorageConfig(
            buffer_pool_pages=128,
            wal_fsync_batch=4,
            compact_every=2,
            compact_min_garbage_ratio=0.25,
        )
        assert StorageConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            StorageConfig.from_dict({"wal_fsnc_batch": 1})

    def test_to_dict_refuses_fileops(self):
        class Ops:
            pass

        with pytest.raises(ValueError):
            StorageConfig(ops=Ops()).to_dict()


class TestDatabaseOpenShims:
    def test_storage_config_reaches_the_backend(self, tmp_path):
        database = Database.open(
            str(tmp_path / "db"),
            storage=StorageConfig(
                buffer_pool_pages=96,
                wal_fsync_batch=4,
                compact_every=3,
                compact_min_garbage_ratio=0.25,
            ),
        )
        try:
            assert database.buffer_pool.capacity_pages == 96
            assert database.backend.wal_fsync_batch == 4
            assert database.backend.compactor.compact_every == 3
            assert database.backend.compactor.min_garbage_ratio == 0.25
        finally:
            database.close()

    def test_legacy_kwargs_warn_and_pin_the_same_backend_state(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="storage=StorageConfig"):
            legacy = Database.open(
                str(tmp_path / "legacy"),
                wal_fsync_batch=4,
                compact_every=3,
                compact_min_garbage_ratio=0.25,
            )
        new = Database.open(
            str(tmp_path / "new"),
            storage=StorageConfig(
                wal_fsync_batch=4, compact_every=3, compact_min_garbage_ratio=0.25
            ),
        )
        try:
            assert legacy.backend.wal_fsync_batch == new.backend.wal_fsync_batch
            assert (
                legacy.backend.compactor.compact_every
                == new.backend.compactor.compact_every
            )
            assert (
                legacy.backend.compactor.min_garbage_ratio
                == new.backend.compactor.min_garbage_ratio
            )
        finally:
            legacy.close()
            new.close()

    def test_both_forms_together_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Database.open(
                str(tmp_path / "db"),
                storage=StorageConfig(),
                wal_fsync_batch=2,
            )

    def test_close_marks_the_database_closed(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        assert not database.closed
        database.close()
        assert database.closed


class TestCreateFocusDatabaseStorage:
    def test_memory_path_honours_storage_pool_pages(self):
        database = create_focus_database(
            buffer_pool_pages=512, storage=StorageConfig(buffer_pool_pages=64)
        )
        assert database.buffer_pool.capacity_pages == 64

    def test_durable_path_forwards_storage(self, tmp_path):
        database = create_focus_database(
            path=str(tmp_path / "crawl"),
            storage=StorageConfig(wal_fsync_batch=6),
        )
        try:
            assert database.backend.wal_fsync_batch == 6
        finally:
            database.close()


class TestCrawlerConfigStorage:
    def test_resolve_storage_prefers_explicit_config(self):
        storage = StorageConfig(wal_fsync_batch=9)
        config = CrawlerConfig(storage=storage, wal_fsync_batch=2)
        assert config.resolve_storage() is storage

    def test_resolve_storage_folds_legacy_knobs(self):
        config = CrawlerConfig(
            wal_fsync_batch=5, compact_every=4, compact_min_garbage_ratio=0.1
        )
        resolved = config.resolve_storage()
        assert resolved == StorageConfig(
            wal_fsync_batch=5, compact_every=4, compact_min_garbage_ratio=0.1
        )
