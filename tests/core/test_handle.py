"""CrawlHandle: the stepped/pausable unit the crawl facade and service share."""

import pytest

from repro.core.config import FocusConfig, JobSpec
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig

GOOD = "recreation/cycling"


@pytest.fixture(scope="module")
def system(small_web):
    config = FocusConfig(
        good_topics=(GOOD,),
        examples_per_leaf=12,
        seed_count=10,
        crawler=CrawlerConfig(max_pages=120, distill_every=60),
    )
    focus = FocusSystem.from_web(small_web, [GOOD], config)
    focus.train()
    return focus


@pytest.fixture(scope="module")
def reference(system):
    """The uninterrupted solo crawl every stepped variant must match."""
    return system.crawl(max_pages=120, fetch_failure_seed=3)


def assert_same_crawl(result, reference):
    assert result.trace.fetched_urls == reference.trace.fetched_urls
    assert [v.relevance for v in result.trace.visits] == [
        v.relevance for v in reference.trace.visits
    ]


class TestStepping:
    def test_single_round_steps_are_bit_identical_to_run(self, system, reference):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3))
        total = 0
        while not handle.done:
            total += handle.step(rounds=1)
        assert total == reference.trace.pages_fetched
        assert_same_crawl(handle.result(), reference)

    def test_step_returns_zero_after_completion(self, system):
        handle = system.start(JobSpec(max_pages=40, fetch_failure_seed=3))
        handle.run()
        assert handle.done
        assert handle.step() == 0

    def test_pause_blocks_stepping_until_resume(self, system, reference):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3))
        handle.step(rounds=2)
        handle.pause()
        assert handle.status == "paused"
        assert handle.step(rounds=5) == 0
        with pytest.raises(RuntimeError, match="paused"):
            handle.run()
        handle.resume()
        assert_same_crawl(handle.run(), reference)

    def test_progress_reports_live_state(self, system):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3, name="probe"))
        handle.step(rounds=1)
        progress = handle.progress()
        assert progress["name"] == "probe"
        assert progress["status"] == "running"
        assert 0 < progress["pages_fetched"] <= 120
        assert progress["budget"] == 120
        assert progress["fetch_attempts"] >= progress["pages_fetched"]
        pipeline = progress["pipeline"]
        assert set(pipeline) == {
            "prefetch_enabled",
            "fetch_overlap_ratio",
            "prefetch",
            "frontier",
        }
        assert pipeline["frontier"]["frontier_size"] >= 0
        assert pipeline["prefetch"]["launched"] >= 0
        handle.cancel()
        assert handle.status == "cancelled"
        assert handle.result().trace is handle.trace


class TestLifecycle:
    def test_cancel_keeps_the_partial_crawl(self, system):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3))
        handle.step(rounds=3)
        fetched = handle.pages_fetched
        handle.cancel()
        assert handle.done
        assert handle.result().trace.pages_fetched == fetched
        handle.cancel()  # idempotent
        assert handle.status == "cancelled"

    def test_fetch_budget_exhaustion_is_a_terminal_state(self, system):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3, fetch_budget=30))
        result = handle.run()
        assert handle.status == "exhausted"
        assert handle.fetch_attempts() >= 30
        assert result.trace.pages_fetched < 120

    def test_pause_after_completion_is_an_error(self, system):
        handle = system.start(JobSpec(max_pages=30, fetch_failure_seed=3))
        handle.run()
        with pytest.raises(RuntimeError, match="cannot pause"):
            handle.pause()
        with pytest.raises(RuntimeError, match="only paused"):
            handle.resume()

    def test_result_before_terminal_state_is_an_error(self, system):
        handle = system.start(JobSpec(max_pages=120, fetch_failure_seed=3))
        with pytest.raises(RuntimeError, match="pending"):
            handle.result()
        handle.cancel()

    def test_start_rejects_foreign_topics(self, system):
        with pytest.raises(ValueError, match="trained for"):
            system.start(JobSpec(good_topics=("health/first_aid",), max_pages=30))


class TestMonitorReopen:
    def test_monitor_reopens_a_closed_durable_database(self, system, tmp_path):
        path = str(tmp_path / "crawl")
        result = system.crawl(max_pages=60, checkpoint_dir=path)
        visited_before = result.monitor().visited_count()
        assert visited_before > 0
        result.database.close()
        monitor = result.monitor()
        assert result.database.closed is False
        assert monitor.visited_count() == visited_before
        result.database.close()

    def test_monitor_on_a_closed_memory_database_raises(self, system):
        result = system.crawl(max_pages=40)
        result.database.close()
        with pytest.raises(RuntimeError, match="closed"):
            result.monitor()
