"""End-to-end tests of the FocusSystem facade and the crawl-table schema."""

import pytest

from repro.core.config import FocusConfig
from repro.core.schema import CRAWL_STATUSES, create_crawl_tables, create_focus_database
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.minidb import Database

GOOD = "recreation/cycling"


class TestSchema:
    def test_create_focus_database_has_all_tables(self):
        database = create_focus_database(buffer_pool_pages=64)
        for table in ("CRAWL", "LINK", "HUBS", "AUTH"):
            assert database.has_table(table)
        assert "visited" in CRAWL_STATUSES

    def test_create_crawl_tables_is_idempotent(self):
        database = Database()
        create_crawl_tables(database)
        create_crawl_tables(database)
        assert database.table_names().count("CRAWL") == 1

    def test_crawl_table_has_expected_columns(self):
        database = create_focus_database()
        columns = database.table("CRAWL").schema.column_names
        for expected in ("oid", "url", "sid", "relevance", "numtries", "serverload", "lastvisited", "kcid", "status"):
            assert expected in columns


@pytest.fixture(scope="module")
def system(small_web):
    config = FocusConfig(
        good_topics=(GOOD,),
        examples_per_leaf=12,
        seed_count=10,
        crawler=CrawlerConfig(max_pages=120, distill_every=60),
    )
    focus = FocusSystem.from_web(small_web, [GOOD], config)
    focus.train()
    return focus


@pytest.fixture(scope="module")
def crawl_result(system):
    return system.crawl(max_pages=120)


class TestFocusSystem:
    def test_bootstrap_builds_everything(self):
        config = FocusConfig(
            good_topics=(GOOD,),
            examples_per_leaf=8,
            web=None,
            crawler=CrawlerConfig(max_pages=30, distill_every=0),
        )
        # Use a tiny web so bootstrap stays fast.
        from tests.conftest import small_web_config

        config = config.copy_with(web=small_web_config(seed=21))
        system = FocusSystem.bootstrap(config)
        model = system.train()
        assert model.parameter_count() > 0
        result = system.crawl(max_pages=30)
        assert result.pages_fetched() == 30

    def test_good_topic_marked_in_taxonomy(self, system):
        assert system.taxonomy.by_path(GOOD).mark.value == "good"

    def test_default_seeds_are_on_topic(self, system, small_web):
        seeds = system.default_seeds()
        assert len(seeds) == 10
        assert all(small_web.topic_of(u) == GOOD for u in seeds)

    def test_crawl_result_metrics(self, crawl_result):
        assert crawl_result.pages_fetched() == 120
        assert 0.0 < crawl_result.harvest_rate() <= 1.0
        assert 0.0 <= crawl_result.ground_truth_precision() <= 1.0
        series = crawl_result.harvest_series(window=50)
        assert len(series) == 120
        histogram = crawl_result.authority_distance_histogram(top_k=30)
        assert sum(histogram.values()) == 30

    def test_focused_beats_unfocused(self, system, crawl_result):
        unfocused = system.crawl(max_pages=120, focused=False)
        assert crawl_result.harvest_rate() > unfocused.harvest_rate()

    def test_crawl_database_carries_classifier_tables(self, crawl_result):
        assert crawl_result.database.has_table("TAXONOMY")
        census = crawl_result.monitor().topic_census(limit=2)
        assert census

    def test_install_model_requires_training(self, small_web):
        system = FocusSystem.from_web(small_web, [GOOD])
        with pytest.raises(RuntimeError):
            system.install_model(Database())

    def test_add_good_topic_updates_config(self, small_web):
        system = FocusSystem.from_web(small_web, ["business/investment/mutual_funds"])
        system.add_good_topic("business/investment")
        assert "business/investment" in system.config.good_topics

    def test_mark_good_replaces_previous(self, small_web):
        system = FocusSystem.from_web(small_web, [GOOD])
        system.mark_good(["health/hiv_aids"])
        assert system.taxonomy.good_paths() == ["health/hiv_aids"]

    def test_citation_sociology_runs(self, crawl_result):
        cotopics = crawl_result.citation_sociology()
        for cotopic in cotopics:
            assert cotopic.lift >= 0.0
            assert cotopic.name  # every co-topic has a printable name

    def test_config_copy_with(self):
        config = FocusConfig()
        modified = config.copy_with(seed_count=99)
        assert modified.seed_count == 99
        assert config.seed_count == 24
