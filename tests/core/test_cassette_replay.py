"""Record once, replay bit-identically forever — the cassette contract
at the engine level.

One crawl of the local fixture site is recorded into a cassette; every
replay of that cassette must reproduce the recording exactly — the same
pages in the same order, the same relevance floats bit for bit, the same
CRAWL/LINK table contents — across the serial, batched, and async
engines, through a kill/resume mid-replay, and with no network stack at
all (the fixture server is long gone when the replays run; aiohttp is
never required).  A committed cassette in ``tests/data/cassettes/``
pins the whole loop in CI without a single live fetch.
"""

import pytest

from repro import JobSpec
from repro.webgraph.cassette import CassetteMismatch, ReplayTransport, lint_cassette
from tests.webgraph.fixture_site import (
    COMMITTED_CASSETTE,
    FIXTURE_MAX_PAGES,
    build_fixture_system,
    fixture_crawler_config,
    record_fixture_cassette,
)


class KillSwitch(Exception):
    """Stands in for SIGKILL: aborts the replay at an arbitrary fetch."""


@pytest.fixture(scope="module")
def cassette_system(small_web):
    # The same construction the recording CLI uses (same web seed, same
    # trained classifier), so committed cassettes replay under it too.
    return build_fixture_system(small_web)


@pytest.fixture(scope="module")
def recording(cassette_system, tmp_path_factory):
    """The recorded fixture crawl: (cassette path, reference result, meta).

    The fixture server is stopped as soon as recording finishes — every
    replay below runs against the file alone.
    """
    path = str(tmp_path_factory.mktemp("cassette") / "fixture.jsonl")
    result, meta = record_fixture_cassette(path, system=cassette_system)
    return path, result, meta


def replay_job(system, path, seeds, **config_overrides):
    """Start a replay of *path* and run it to completion; returns the handle."""
    spec = JobSpec(
        seeds=tuple(seeds),
        crawler=fixture_crawler_config(path, cassette_mode="replay", **config_overrides),
    )
    handle = system.start(spec)
    handle.run()
    return handle


@pytest.fixture(scope="module")
def batched_recording(cassette_system, tmp_path_factory):
    """The batched engine's own recording: batch checkout orders pages
    differently from the serial engine, so each shape replays against
    its own cassette."""
    path = str(tmp_path_factory.mktemp("cassette") / "batched.jsonl")
    result, meta = record_fixture_cassette(
        path, system=cassette_system, engine="batched", batch_size=4
    )
    return path, result, meta


@pytest.fixture(scope="module")
def serial_replay(cassette_system, recording):
    path, _, meta = recording
    handle = replay_job(cassette_system, path, meta["seeds"])
    yield handle
    handle.close()


@pytest.fixture(scope="module")
def batched_replay(cassette_system, batched_recording):
    path, _, meta = batched_recording
    handle = replay_job(cassette_system, path, meta["seeds"], engine="batched", batch_size=4)
    yield handle
    handle.close()


def assert_matches_recording(trace, reference_trace):
    assert trace.fetched_urls == reference_trace.fetched_urls
    assert trace.relevance_series() == reference_trace.relevance_series()  # bitwise
    assert trace.failed_urls == reference_trace.failed_urls
    assert trace.distillations == reference_trace.distillations


def table_rows(database, name):
    return sorted(database.table(name).rows())


class TestReplayMatchesRecording:
    def test_recording_fetched_the_full_budget(self, recording):
        _, result, _ = recording
        assert result.pages_fetched() == FIXTURE_MAX_PAGES
        assert result.harvest_rate() > 0.0

    def test_serial_replay_is_bit_identical(self, serial_replay, recording):
        _, reference, _ = recording
        assert serial_replay.status == "completed"
        assert_matches_recording(serial_replay.trace, reference.trace)

    def test_serial_replay_consumes_the_whole_cassette(self, serial_replay):
        transport = serial_replay.crawler.engine.transport
        assert isinstance(transport, ReplayTransport)
        transport.assert_exhausted()

    def test_auto_mode_resolves_to_replay_on_an_existing_cassette(
        self, cassette_system, recording
    ):
        path, reference, meta = recording
        spec = JobSpec(
            seeds=tuple(meta["seeds"]),
            crawler=fixture_crawler_config(path, cassette_mode="auto"),
        )
        handle = cassette_system.start(spec)
        try:
            assert isinstance(handle.crawler.engine.transport, ReplayTransport)
            handle.run()
            assert_matches_recording(handle.trace, reference.trace)
        finally:
            handle.close()

    def test_async_fetch_replay_matches_the_serial_recording(
        self, cassette_system, recording, serial_replay
    ):
        """fetch_mode="async" only changes I/O interleaving: the replayed
        crawl still commits in checkout order and equals the threaded
        recording bit for bit, tables included."""
        path, reference, meta = recording
        handle = replay_job(cassette_system, path, meta["seeds"], fetch_mode="async")
        try:
            assert_matches_recording(handle.trace, reference.trace)
            for table in ("CRAWL", "LINK"):
                assert table_rows(handle.database, table) == table_rows(
                    serial_replay.database, table
                )
            handle.crawler.engine.transport.assert_exhausted()
        finally:
            handle.close()

    def test_batched_replay_is_bit_identical(self, batched_replay, batched_recording):
        _, reference, _ = batched_recording
        assert batched_replay.status == "completed"
        assert_matches_recording(batched_replay.trace, reference.trace)
        batched_replay.crawler.engine.transport.assert_exhausted()

    def test_batched_async_replay_matches_the_batched_recording(
        self, cassette_system, batched_recording, batched_replay
    ):
        path, reference, meta = batched_recording
        handle = replay_job(
            cassette_system,
            path,
            meta["seeds"],
            engine="batched",
            batch_size=4,
            fetch_mode="async",
        )
        try:
            assert_matches_recording(handle.trace, reference.trace)
            for table in ("CRAWL", "LINK"):
                assert table_rows(handle.database, table) == table_rows(
                    batched_replay.database, table
                )
            handle.crawler.engine.transport.assert_exhausted()
        finally:
            handle.close()


class TestReplayNeedsNoNetwork:
    def test_replay_never_builds_a_network_transport(
        self, cassette_system, recording, monkeypatch
    ):
        """Replay runs from the file alone: the fixture server is gone,
        and the transport registry (the only road to aiohttp or a
        socket) is never consulted."""
        import repro.webgraph.transport as transport_module

        def refuse(*args, **kwargs):
            raise AssertionError("replay touched the network transport registry")

        monkeypatch.setattr(transport_module, "build_transport", refuse)
        path, reference, meta = recording
        handle = replay_job(cassette_system, path, meta["seeds"])
        try:
            assert_matches_recording(handle.trace, reference.trace)
        finally:
            handle.close()


class TestKillResumeMidReplay:
    @pytest.mark.parametrize("kill_after", [5, 11])
    def test_killed_replay_resumes_bit_identically(
        self, cassette_system, recording, serial_replay, tmp_path, monkeypatch, kill_after
    ):
        """SIGKILL mid-replay, resume from the checkpoint: the replayer's
        served counters are part of the snapshot, so the combined run
        equals an uninterrupted replay bit for bit."""
        path, _, meta = recording
        real_fetch = ReplayTransport.fetch
        state = {"calls": 0}

        def killing(self, url):
            state["calls"] += 1
            if state["calls"] > kill_after:
                raise KillSwitch(f"killed at replay fetch {kill_after}")
            return real_fetch(self, url)

        monkeypatch.setattr(ReplayTransport, "fetch", killing)
        spec = JobSpec(
            seeds=tuple(meta["seeds"]),
            crawler=fixture_crawler_config(
                path, cassette_mode="replay", checkpoint_every=4
            ),
            checkpoint_dir=str(tmp_path / "crawl"),
        )
        doomed = cassette_system.start(spec)
        with pytest.raises(KillSwitch):
            doomed.run()
        assert doomed.status == "failed"
        doomed.close()
        monkeypatch.undo()

        resumed = cassette_system.resume(str(tmp_path / "crawl"))
        try:
            assert isinstance(resumed.crawler.engine.transport, ReplayTransport)
            resumed.run()
            assert_matches_recording(resumed.trace, serial_replay.trace)
            for table in ("CRAWL", "LINK"):
                assert table_rows(resumed.database, table) == table_rows(
                    serial_replay.database, table
                )
            resumed.crawler.engine.transport.assert_exhausted()
        finally:
            resumed.close()


class TestStrictness:
    def test_strict_replay_fails_loudly_on_divergence(self, cassette_system, recording):
        """A replayed crawl that requests anything the cassette does not
        hold (here: a different seed URL) dies with CassetteMismatch."""
        path, _, _ = recording
        spec = JobSpec(
            seeds=("http://127.0.0.1:1/not-recorded.html",),
            crawler=fixture_crawler_config(path, cassette_mode="replay"),
        )
        handle = cassette_system.start(spec)
        try:
            with pytest.raises(CassetteMismatch, match="diverged"):
                handle.run()
            assert handle.status == "failed"
        finally:
            handle.close()

    def test_non_strict_replay_degrades_misses_to_not_found(
        self, cassette_system, recording
    ):
        path, _, _ = recording
        spec = JobSpec(
            seeds=("http://127.0.0.1:1/not-recorded.html",),
            crawler=fixture_crawler_config(
                path, cassette_mode="replay", cassette_strict=False
            ),
        )
        handle = cassette_system.start(spec)
        try:
            handle.run()
            assert handle.status == "completed"
            assert handle.trace.fetched_urls == []
            assert handle.trace.failed_urls == ["http://127.0.0.1:1/not-recorded.html"]
        finally:
            handle.close()


class TestCommittedCassette:
    """The corpus in tests/data/cassettes/ replays under a freshly built
    system — the regression net that keeps the cassette format, the
    fixture system construction, and the replayer honest in CI."""

    def test_corpus_exists_and_lints(self):
        assert COMMITTED_CASSETTE.is_file(), (
            "missing committed cassette; regenerate with "
            "PYTHONPATH=src python tests/webgraph/fixture_site.py "
            f"--record {COMMITTED_CASSETTE} --port 8999"
        )
        summary = lint_cassette(str(COMMITTED_CASSETTE))
        assert summary["version"] == 1
        assert summary["events"]["fetch"] > 0
        assert summary["meta"]["site"] == "fixture_site"

    def test_corpus_replays_to_the_full_budget(self, cassette_system):
        meta = lint_cassette(str(COMMITTED_CASSETTE))["meta"]
        handle = replay_job(
            cassette_system,
            str(COMMITTED_CASSETTE),
            meta["seeds"],
            max_pages=meta["max_pages"],
        )
        try:
            assert handle.status == "completed"
            assert handle.trace.pages_fetched == meta["max_pages"]
            relevances = handle.trace.relevance_series()
            assert all(0.0 <= r <= 1.0 for r in relevances)
            assert max(relevances) > 0.0
            handle.crawler.engine.transport.assert_exhausted()
        finally:
            handle.close()
