"""Tests for the evaluation metrics (harvest rate, coverage, distances, co-topics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import metrics
from repro.crawler.focused import CrawlTrace, PageVisit


def make_trace(relevances, urls=None):
    trace = CrawlTrace()
    for i, relevance in enumerate(relevances):
        url = urls[i] if urls else f"http://s{i % 3}.example/{i}"
        trace.visits.append(
            PageVisit(tick=i + 1, url=url, relevance=relevance, server=f"s{i % 3}", out_degree=3)
        )
        trace.fetched_urls.append(url)
    return trace


class TestMovingAverageAndHarvest:
    def test_moving_average_window_one_is_identity(self):
        assert metrics.moving_average([1, 2, 3], 1) == [1, 2, 3]

    def test_moving_average_trailing_window(self):
        assert metrics.moving_average([1.0, 1.0, 4.0, 4.0], 2) == [1.0, 1.0, 2.5, 4.0]

    def test_moving_average_rejects_bad_window(self):
        with pytest.raises(ValueError):
            metrics.moving_average([1.0], 0)

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=80), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_moving_average_bounds_property(self, values, window):
        averaged = metrics.moving_average(values, window)
        assert len(averaged) == len(values)
        assert all(min(values) - 1e-9 <= a <= max(values) + 1e-9 for a in averaged)

    def test_harvest_series_and_average(self):
        trace = make_trace([1.0, 0.0, 1.0, 0.0])
        series = metrics.harvest_series(trace, window=2)
        assert series[0] == (1, 1.0)
        assert series[-1][1] == 0.5
        assert metrics.average_harvest_rate(trace) == 0.5
        assert metrics.average_harvest_rate(trace, skip_first=2) == 0.5
        assert metrics.average_harvest_rate(CrawlTrace()) == 0.0


class TestCoverage:
    def test_coverage_series_monotone_and_bounded(self):
        reference = make_trace([0.9] * 6, urls=[f"http://ref{i}.example/x" for i in range(6)])
        test_urls = [f"http://ref{i}.example/x" for i in range(4)] + ["http://other.example/y"]
        test = make_trace([0.5] * 5, urls=test_urls)
        points = metrics.coverage_series(reference, test, relevance_threshold=0.5)
        url_coverages = [p.url_coverage for p in points]
        assert url_coverages == sorted(url_coverages)
        assert points[-1].url_coverage == pytest.approx(4 / 6)
        assert points[-1].server_coverage == pytest.approx(4 / 6)

    def test_relevance_threshold_filters_reference(self):
        reference = make_trace([0.9, 0.1], urls=["http://a.example/1", "http://b.example/2"])
        assert metrics.relevant_reference_set(reference, 0.5) == {"http://a.example/1"}

    def test_empty_reference_yields_no_points(self):
        reference = make_trace([0.0, 0.0])
        test = make_trace([0.5])
        assert metrics.coverage_series(reference, test, relevance_threshold=0.9) == []


class TestDistances:
    def test_distance_histogram_full_graph(self, small_web):
        seeds = small_web.keyword_seed_pages("recreation/cycling", count=5)
        targets = small_web.pages_of_topic("recreation/cycling")[:30]
        histogram = metrics.distance_histogram(small_web, seeds, targets)
        assert sum(histogram.values()) == 30
        assert all(d >= -1 for d in histogram)

    def test_crawl_distances_only_expand_visited_pages(self, small_web):
        seeds = small_web.keyword_seed_pages("recreation/cycling", count=3)
        # A trace that visited only the seeds: distances beyond their direct
        # out-links must be unknown.
        trace = make_trace([1.0] * len(seeds), urls=seeds)
        distances = metrics.crawl_distances(small_web, trace, seeds)
        assert all(d <= 1 for d in distances.values())
        full = small_web.shortest_distances(seeds)
        assert len(distances) <= len(full)

    def test_crawl_distance_histogram_marks_unreached(self, small_web):
        seeds = small_web.keyword_seed_pages("recreation/cycling", count=3)
        trace = make_trace([1.0] * len(seeds), urls=seeds)
        far_targets = small_web.pages_of_topic("arts/music")[:5]
        histogram = metrics.crawl_distance_histogram(small_web, trace, seeds, far_targets)
        assert histogram.get(-1, 0) >= 1


class TestCitationSociology:
    def test_cotopic_detection(self, small_web, taxonomy, trained_model):
        # Build a small artificial trace: cycling pages plus the first-aid
        # pages they link to, plus unrelated music pages as background.
        from repro.classifier.tokenizer import term_frequencies

        cycling = small_web.pages_of_topic("recreation/cycling")[:40]
        linked = [
            t
            for u in cycling
            for t in small_web.out_links(u)
            if small_web.has_page(t) and small_web.topic_of(t) == "health/first_aid"
        ]
        music = small_web.pages_of_topic("arts/music")[:30]
        urls = cycling + linked + music
        trace = CrawlTrace()
        for i, url in enumerate(urls):
            doc = term_frequencies(small_web.page(url).tokens)
            trace.visits.append(
                PageVisit(
                    tick=i,
                    url=url,
                    relevance=trained_model.relevance(doc),
                    server="s",
                    out_degree=1,
                    best_leaf_cid=trained_model.best_leaf(doc),
                )
            )
            trace.fetched_urls.append(url)
        good_urls = set(cycling)
        exclude = {taxonomy.by_path("recreation/cycling").cid}
        names = {n.cid: n.path for n in taxonomy.nodes()}
        cotopics = metrics.citation_sociology(trace, small_web, good_urls, names, exclude)
        if linked:  # the generator links cycling → first aid with nonzero probability
            assert cotopics
            assert cotopics[0].name == "health/first_aid"
            assert cotopics[0].lift > 0.0
            # Music was crawled in bulk but is never cited by cycling pages,
            # so it must not outrank the genuine co-topic.
            music_lifts = [c.lift for c in cotopics if c.name == "arts/music"]
            assert all(cotopics[0].lift >= lift for lift in music_lifts)

    def test_insufficient_neighbourhood_returns_empty(self, small_web, taxonomy):
        trace = make_trace([0.9])
        result = metrics.citation_sociology(trace, small_web, set(), {}, set())
        assert result == []
