"""Smoke and shape tests for the experiment harness (scaled-down parameters).

The benchmarks in ``benchmarks/`` run the full-size experiments; these
tests run miniature versions so the whole pipeline — workload building,
crawling, measurement, report printing — is exercised in the unit-test
suite within a few tens of seconds.
"""

import numpy as np
import pytest

from repro.experiments import fig5_harvest, fig6_coverage, fig7_distance, fig8_io, workloads
from repro.experiments.runner import run_experiments


@pytest.fixture(scope="module")
def tiny_workload():
    return workloads.build_crawl_workload(seed=3, scale=0.25, max_pages=250)


class TestWorkloads:
    def test_crawl_web_config_scales(self):
        small = workloads.crawl_web_config(scale=0.2)
        full = workloads.crawl_web_config(scale=1.0)
        assert small.background_pages < full.background_pages
        assert small.topic_page_overrides[workloads.CYCLING] < full.topic_page_overrides[workloads.CYCLING]

    def test_workload_builds_trained_system(self, tiny_workload):
        assert tiny_workload.system.model is not None
        assert len(tiny_workload.web) > 500
        assert tiny_workload.good_topic == workloads.CYCLING


class TestFig5:
    def test_harvest_experiment_shape(self, tiny_workload):
        result = fig5_harvest.run_harvest_experiment(
            workload=tiny_workload, max_pages=250, window=50
        )
        # The focused crawler must beat the unfocused baseline overall and
        # especially over the tail of the crawl (the paper's Figure 5 claim).
        assert result.focused_average > result.unfocused_average
        assert result.tail_advantage() > 1.5
        report = fig5_harvest.print_report(result, every=50)
        assert any("average" in line for line in report)

    def test_stagnation_experiment_improves_after_fix(self):
        result = fig5_harvest.run_stagnation_experiment(seed=5, scale=0.25, max_pages=150)
        assert result.improved
        assert result.after_harvest > result.before_harvest


class TestFig6:
    def test_coverage_experiment_shape(self, tiny_workload):
        result = fig6_coverage.run_coverage_experiment(
            workload=tiny_workload, reference_pages=220, test_pages=220, seed_size=10
        )
        assert 0.3 < result.final_url_coverage <= 1.0
        assert result.final_server_coverage >= result.final_url_coverage * 0.8
        coverages = [p.url_coverage for p in result.points]
        assert coverages == sorted(coverages)
        assert fig6_coverage.print_report(result)

    def test_db_reference_set_equals_trace_reference_set(self, tiny_workload):
        # The experiment reads the relevant set from the CRAWL table; the
        # trace-walk twin must produce the exact same URLs (visit-time
        # relevance is what the store records).
        from repro.core import metrics

        result = fig6_coverage.run_coverage_experiment(
            workload=tiny_workload, reference_pages=150, test_pages=60, seed_size=10
        )
        threshold = float(np.exp(-1.0))
        from_trace = metrics.relevant_reference_set(
            result.reference_result.trace, threshold
        )
        from_db = metrics.relevant_reference_set_db(
            result.reference_result.database, threshold
        )
        assert from_db == from_trace
        assert len(from_db) == result.reference_relevant_urls


class TestFig7:
    def test_distance_experiment_shape(self, tiny_workload):
        result = fig7_distance.run_distance_experiment(
            workload=tiny_workload, max_pages=250, top_authorities=50
        )
        assert sum(result.histogram.values()) == 50
        # At this miniature scale the community is small, so we only check
        # that exploration went beyond the seeds themselves; the full-size
        # Figure 7 shape (distances of 4+ links) is asserted by
        # benchmarks/bench_fig7_distance.py.
        assert result.max_distance >= 2
        assert result.mass_beyond_two >= 0.0
        assert result.top_hubs
        assert fig7_distance.print_report(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def classifier_fixture(self):
        return fig8_io.build_classifier_fixture(n_documents=40, buffer_pool_pages=48, seed=5)

    def test_bulk_probe_beats_single_probe(self, classifier_fixture):
        comparison = fig8_io.run_classifier_comparison(fixture=classifier_fixture)
        assert comparison.speedup("sql", "bulk") > 1.5
        assert comparison.max_relevance_disagreement() < 1e-6
        sql = comparison.measurements["sql"]
        assert sql.probe_cost > 0 and sql.doc_scan_cost > 0

    def test_memory_scaling_shape(self):
        points = fig8_io.run_memory_scaling(pool_sizes=(16, 64, 256), n_documents=30, seed=5)
        assert len(points) == 3
        single = [p.single_probe_cost for p in points]
        bulk = [p.bulk_probe_cost for p in points]
        # SingleProbe keeps improving with memory; BulkProbe needs little.
        assert single[0] > single[-1]
        assert bulk[0] >= bulk[-1]
        assert single[-1] > bulk[-1]

    def test_output_scaling_roughly_linear(self):
        points = fig8_io.run_output_scaling(document_counts=(10, 30, 60), seed=5)
        assert fig8_io.output_scaling_correlation(points) > 0.6

    def test_distillation_join_beats_lookups(self):
        fixture = fig8_io.build_distillation_fixture(seed=5, buffer_pool_pages=48)
        comparison = fig8_io.run_distillation_comparison(fixture=fixture, iterations=2)
        assert comparison.speedup() > 1.5
        assert comparison.rankings_agree(k=5)
        reference = fig8_io.reference_distillation(fixture, iterations=2)
        top_reference = {oid for oid, _ in reference.top_hubs(5)}
        assert top_reference == set(comparison.join.top_hub_oids[:5])


class TestRunner:
    def test_runner_produces_report_lines(self):
        lines = run_experiments(["stagnation"], seed=5, scale=0.2)
        assert any("stagnation" in line or "harvest" in line for line in lines)
