"""Integration tests: the three classifier access paths agree and their tables are sane.

The in-memory model is the numerical reference; SingleProbe (both the
STAT and BLOB variants) and BulkProbe read the same statistics from the
database and must reproduce its relevance scores — they differ only in
I/O access pattern, which is the whole point of paper Figure 8.
"""

import pytest

from repro.classifier.bulk_probe import BulkProbeClassifier
from repro.classifier.single_probe import SingleProbeClassifier
from repro.classifier.tokenizer import term_frequencies
from repro.classifier.training import ModelInstaller, stat_table_name, sync_taxonomy_marks
from repro.minidb import Database
from repro.taxonomy.tree import NodeMark


@pytest.fixture(scope="module")
def test_documents(small_web):
    urls = (
        small_web.pages_of_topic("recreation/cycling")[:6]
        + small_web.pages_of_topic("arts/music")[:3]
        + small_web.pages_of_topic("", include_descendants=False)[:6]
    )
    return {did: term_frequencies(small_web.page(url).tokens) for did, url in enumerate(urls)}


class TestModelInstaller:
    def test_tables_created_and_populated(self, model_database, trained_model):
        assert model_database.has_table("TAXONOMY")
        assert model_database.has_table("BLOB")
        assert model_database.has_table("DOCUMENT")
        for cid in trained_model.internal_cids():
            assert model_database.has_table(stat_table_name(cid))
            assert len(model_database.table(stat_table_name(cid))) > 0
        assert len(model_database.table("TAXONOMY")) == len(trained_model.taxonomy)

    def test_taxonomy_rows_carry_marks_and_priors(self, model_database, taxonomy):
        rows = {r["kcid"]: r for r in model_database.query("TAXONOMY").run()}
        cycling = taxonomy.by_path("recreation/cycling")
        assert rows[cycling.cid]["type"] == "good"
        assert rows[cycling.cid]["logprior"] is not None
        assert rows[taxonomy.root.cid]["pcid"] is None

    def test_blob_payload_round_trip(self, model_database, trained_model):
        blob_table = model_database.table("BLOB")
        row = next(blob_table.rows_as_dicts())
        records = ModelInstaller.decode_blob(row["stat"])
        assert records and all(isinstance(kcid, int) for kcid, _ in records)
        node = trained_model.nodes[row["pcid"]]
        for kcid, logtheta in records:
            assert node.logtheta[(kcid, row["tid"])] == pytest.approx(logtheta)

    def test_decode_blob_rejects_corrupt_payload(self):
        with pytest.raises(ValueError):
            ModelInstaller.decode_blob(b"\x01\x02\x03")

    def test_sync_taxonomy_marks(self, trained_model):
        database = Database(buffer_pool_pages=256)
        ModelInstaller(database).install(trained_model)
        taxonomy = trained_model.taxonomy
        first_aid = taxonomy.by_path("health/first_aid")
        original_mark = first_aid.mark
        try:
            first_aid.mark = NodeMark.GOOD
            sync_taxonomy_marks(database, taxonomy)
            rows = {r["kcid"]: r["type"] for r in database.query("TAXONOMY").run()}
            assert rows[first_aid.cid] == "good"
        finally:
            first_aid.mark = original_mark


class TestBackendAgreement:
    def test_single_probe_blob_matches_memory(self, model_database, taxonomy, trained_model, test_documents):
        classifier = SingleProbeClassifier(model_database, taxonomy, mode="blob")
        for did, doc in test_documents.items():
            assert classifier.relevance(doc) == pytest.approx(trained_model.relevance(doc), abs=1e-9)

    def test_single_probe_stat_matches_memory(self, model_database, taxonomy, trained_model, test_documents):
        classifier = SingleProbeClassifier(model_database, taxonomy, mode="stat")
        for did, doc in test_documents.items():
            assert classifier.relevance(doc) == pytest.approx(trained_model.relevance(doc), abs=1e-9)

    def test_bulk_probe_matches_memory(self, trained_model, taxonomy, test_documents):
        database = Database(buffer_pool_pages=512)
        ModelInstaller(database).install(trained_model)
        bulk = BulkProbeClassifier(database, taxonomy)
        results = bulk.classify_documents(test_documents)
        assert set(results) == set(test_documents)
        for did, doc in test_documents.items():
            assert results[did].relevance == pytest.approx(trained_model.relevance(doc), abs=1e-6)

    def test_invalid_single_probe_mode(self, model_database, taxonomy):
        with pytest.raises(ValueError):
            SingleProbeClassifier(model_database, taxonomy, mode="hybrid")

    def test_single_probe_cost_accounting(self, trained_model, taxonomy, test_documents):
        database = Database(buffer_pool_pages=32)
        ModelInstaller(database).install(trained_model)
        bulk = BulkProbeClassifier(database, taxonomy)
        bulk.load_documents(test_documents)
        classifier = SingleProbeClassifier(database, taxonomy, mode="blob")
        database.clear_cache()
        database.reset_stats()
        classifier.classify_batch(list(test_documents))
        assert classifier.cost.documents == len(test_documents)
        assert classifier.cost.probes > 0
        assert classifier.cost.doc_scan_cost > 0
        assert classifier.cost.probe_cost > 0

    def test_bulk_probe_cost_accounting(self, trained_model, taxonomy, test_documents):
        database = Database(buffer_pool_pages=32)
        ModelInstaller(database).install(trained_model)
        bulk = BulkProbeClassifier(database, taxonomy)
        database.clear_cache()
        database.reset_stats()
        bulk.classify_documents(test_documents)
        assert bulk.cost.doc_scan_cost > 0
        assert bulk.cost.join_cost > 0

    def test_classify_batch_defaults_to_all_loaded_documents(self, trained_model, taxonomy, test_documents):
        database = Database(buffer_pool_pages=256)
        ModelInstaller(database).install(trained_model)
        bulk = BulkProbeClassifier(database, taxonomy)
        bulk.load_documents(test_documents)
        results = bulk.classify_batch()
        assert set(results) == set(test_documents)
