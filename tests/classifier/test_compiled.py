"""Equivalence suite: the columnar NumPy scoring core vs. the reference path.

The compiled backend must agree with the pure-Python hierarchical model
to 1e-9 on posteriors and relevance and exactly on best-leaf identity —
on the trained test model, on randomized taxonomies, and on degenerate
documents (empty, featureless, unknown terms).  Within the compiled
backend, scoring must not depend on how documents are grouped into
batches (checkpoint/resume relies on this).
"""

import math
import random

import pytest

from repro.classifier.compiled import CompiledHierarchicalModel
from repro.classifier.model import (
    TERM_VECTOR_CACHE_CAPACITY,
    HierarchicalModel,
    NodeModel,
)
from repro.classifier.tokenizer import TermFrequencies, term_frequencies
from repro.core.caching import LRUCache
from repro.taxonomy.tree import TopicTaxonomy


def random_taxonomy(rng: random.Random) -> TopicTaxonomy:
    """A random 2-3 level topic tree."""
    spec = {}
    for t in range(rng.randint(2, 4)):
        children = {}
        for s in range(rng.randint(0, 3)):
            children[f"s{t}{s}"] = {}
        spec[f"t{t}"] = children
    return TopicTaxonomy.from_spec(spec)


def random_model(rng: random.Random) -> HierarchicalModel:
    """A random trained-model shape: features, priors, and statistics."""
    taxonomy = random_taxonomy(rng)
    tid_pool = [rng.randrange(1, 1 << 32) for _ in range(60)]
    nodes = {}
    for node in taxonomy.internal_nodes():
        children = node.children
        # Occasionally leave an internal node unmodelled (skipped by both paths).
        if rng.random() < 0.15 and not node.is_root:
            continue
        features = set(rng.sample(tid_pool, rng.randint(0, 25)))
        logdenom = {c.cid: math.log(rng.uniform(50, 500)) for c in children}
        priors = [rng.uniform(0.05, 1.0) for _ in children]
        total = sum(priors)
        logprior = {c.cid: math.log(p / total) for c, p in zip(children, priors)}
        logtheta = {}
        for c in children:
            for tid in features:
                if rng.random() < 0.5:
                    logtheta[(c.cid, tid)] = -rng.uniform(0.5, 8.0)
        nodes[node.cid] = NodeModel(
            cid=node.cid,
            child_cids=[c.cid for c in children],
            feature_tids=features,
            logprior=logprior,
            logdenom=logdenom,
            logtheta=logtheta,
        )
    leaf_paths = [n.path for n in taxonomy.leaves() if n.path]
    taxonomy.mark_good(rng.sample(leaf_paths, min(2, len(leaf_paths))))
    return HierarchicalModel(taxonomy=taxonomy, nodes=nodes)


def random_document(rng: random.Random, tid_pool) -> TermFrequencies:
    kind = rng.random()
    if kind < 0.1:
        return TermFrequencies({})  # empty document
    if kind < 0.2:
        # No feature overlap at all: unknown term ids only.
        return TermFrequencies({rng.randrange(1 << 33, 1 << 34): rng.randint(1, 5)})
    terms = rng.sample(tid_pool, rng.randint(1, min(20, len(tid_pool))))
    return TermFrequencies({tid: rng.randint(1, 7) for tid in terms})


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_models(self, seed):
        rng = random.Random(seed)
        model = random_model(rng)
        compiled = CompiledHierarchicalModel(model)
        tid_pool = sorted(
            {tid for node in model.nodes.values() for tid in node.feature_tids}
        ) or [1, 2, 3]
        documents = [random_document(rng, tid_pool) for _ in range(40)]
        reference = model.classify_batch(documents)
        outcome = compiled.classify_batch(documents)
        for ref, got, document in zip(reference, outcome, documents):
            assert got.relevance == pytest.approx(ref.relevance, abs=1e-9)
            assert got.best_leaf_cid == ref.best_leaf_cid
            # Full posterior vectors agree too, not just their summaries.
            posteriors = model.node_posteriors(document)
            matrix = compiled.posterior_matrix([document])[0]
            for cid, col in compiled._column_of_cid.items():
                assert matrix[col] == pytest.approx(
                    posteriors.get(cid, 0.0), abs=1e-9
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_batch_packing_invariance(self, seed):
        """A document scores bit-identically alone and inside any batch."""
        rng = random.Random(100 + seed)
        model = random_model(rng)
        compiled = CompiledHierarchicalModel(model)
        tid_pool = sorted(
            {tid for node in model.nodes.values() for tid in node.feature_tids}
        ) or [1, 2, 3]
        documents = [random_document(rng, tid_pool) for _ in range(17)]
        batched = compiled.classify_batch(documents)
        singles = [compiled.classify_batch([d])[0] for d in documents]
        for single, grouped in zip(singles, batched):
            assert single.relevance == grouped.relevance  # bitwise
            assert single.best_leaf_cid == grouped.best_leaf_cid


class TestTrainedModelEquivalence:
    def test_matches_reference_on_web_pages(self, small_web, trained_model):
        compiled = CompiledHierarchicalModel(trained_model)
        urls = list(small_web.pages)[:120]
        documents = [term_frequencies(small_web.page(u).tokens) for u in urls]
        reference = trained_model.classify_batch(documents)
        outcome = compiled.classify_batch(documents)
        for ref, got in zip(reference, outcome):
            assert got.relevance == pytest.approx(ref.relevance, abs=1e-9)
            assert got.best_leaf_cid == ref.best_leaf_cid

    def test_single_document_accessors(self, small_web, trained_model):
        compiled = CompiledHierarchicalModel(trained_model)
        document = term_frequencies(small_web.page(list(small_web.pages)[0]).tokens)
        assert compiled.relevance(document) == pytest.approx(
            trained_model.relevance(document), abs=1e-9
        )
        assert compiled.best_leaf(document) == trained_model.best_leaf(document)

    def test_empty_batch(self, trained_model):
        assert CompiledHierarchicalModel(trained_model).classify_batch([]) == []


class TestTermVectorCacheBound:
    def test_default_capacity_is_bounded(self, trained_model):
        node = next(iter(trained_model.nodes.values()))
        assert node._term_vectors.capacity == TERM_VECTOR_CACHE_CAPACITY

    def test_eviction_keeps_results_bit_identical(self, seed=5):
        rng = random.Random(seed)
        model = random_model(rng)
        node = next(iter(model.nodes.values()))
        tid_pool = sorted(node.feature_tids)
        if not tid_pool:
            pytest.skip("random model drew an empty feature set")
        documents = [
            TermFrequencies({tid: rng.randint(1, 5) for tid in rng.sample(tid_pool, min(6, len(tid_pool)))})
            for _ in range(30)
        ]
        unbounded = [node.conditional_posteriors(d) for d in documents]
        # A tiny cache forces constant eviction on the shared-work path.
        node._term_vectors = LRUCache(2)
        shared = [node.conditional_posteriors_shared(d) for d in documents]
        assert len(node._term_vectors) <= 2
        for ref, got in zip(unbounded, shared):
            assert got == ref  # bit for bit, eviction or not
