"""Unit tests for the classifier building blocks: tokenizer, features, training, model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.classifier.features import FeatureSelectionConfig, fisher_scores, select_features
from repro.classifier.model import normalize_log_scores
from repro.classifier.tokenizer import (
    STOPWORDS,
    term_frequencies,
    term_frequencies_by_term,
    tokenize_text,
)
from repro.classifier.training import ClassifierTrainer, TrainingConfig
from repro.taxonomy.examples import examples_from_documents
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.vocabulary import term_id


class TestTokenizer:
    def test_tokenize_text_lowercases_and_drops_stopwords(self):
        tokens = tokenize_text("The Cyclist AND the Velodrome!")
        assert "the" not in tokens and "and" not in tokens
        assert "cyclist" in tokens and "velodrome" in tokens

    def test_short_tokens_dropped(self):
        assert tokenize_text("a b cd") == ["cd"]

    def test_term_frequencies_from_token_list(self):
        freqs = term_frequencies(["bike", "bike", "race"])
        assert freqs.by_tid[term_id("bike")] == 2
        assert freqs.length == 3
        assert len(freqs) == 2

    def test_term_frequencies_from_text(self):
        freqs = term_frequencies("bike bike race")
        assert freqs.by_tid[term_id("bike")] == 2

    def test_term_frequencies_by_term(self):
        assert term_frequencies_by_term(["x", "x", "y"]) == {"x": 2, "y": 1}

    def test_stopwords_are_lowercase(self):
        assert all(word == word.lower() for word in STOPWORDS)

    @given(st.lists(st.sampled_from(["bike", "race", "wheel", "song", "guitar", "zz9"]), max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_unique_token_fast_path_matches_per_occurrence_hashing(self, tokens):
        """term_frequencies hashes each distinct token once; the result —
        values *and* insertion order — must equal hashing every occurrence."""
        from collections import Counter

        reference = dict(Counter(map(term_id, tokens)))
        assert term_frequencies(tokens).by_tid == reference
        assert list(term_frequencies(tokens).by_tid) == list(reference)

    def test_colliding_tids_sum_their_counts(self):
        """Distinct tokens sharing a 32-bit id must merge, not overwrite."""
        import random
        import zlib

        # CRC32 detects small structured differences by design, so search
        # random tokens (birthday bound ~80k draws over a 32-bit space).
        rng = random.Random(0)
        seen = {}
        pair = None
        for _ in range(1 << 20):
            token = f"{rng.getrandbits(64):016x}"
            crc = zlib.crc32(token.encode()) & 0xFFFFFFFF
            if crc in seen and seen[crc] != token:
                pair = (seen[crc], token)
                break
            seen[crc] = token
        assert pair is not None, "no crc32 collision found in search budget"
        a, b = pair
        freqs = term_frequencies([a, a, b])
        assert freqs.by_tid == {term_id(a): 3}


class TestFeatureSelection:
    def test_fisher_scores_prefer_discriminative_terms(self):
        class_a = {"shared": [0.1, 0.1], "only_a": [0.3, 0.25], "only_b": [0.0, 0.0]}
        class_b = {"shared": [0.1, 0.1], "only_a": [0.0, 0.0], "only_b": [0.3, 0.35]}
        scores = fisher_scores([class_a, class_b])
        assert scores["only_a"] > scores["shared"]
        assert scores["only_b"] > scores["shared"]

    def test_select_features_caps_count_and_orders_by_score(self):
        docs_a = [{"alpha": 5, "common": 3}, {"alpha": 4, "common": 2}]
        docs_b = [{"beta": 5, "common": 3}, {"beta": 6, "common": 2}]
        config = FeatureSelectionConfig(max_features=2, min_document_frequency=2)
        features = select_features([docs_a, docs_b], config)
        assert len(features) == 2
        assert set(features) == {"alpha", "beta"}

    def test_document_frequency_filter_falls_back_when_everything_is_rare(self):
        docs_a = [{"one": 1}]
        docs_b = [{"two": 1}]
        config = FeatureSelectionConfig(max_features=10, min_document_frequency=3)
        features = select_features([docs_a, docs_b], config)
        assert set(features) == {"one", "two"}

    def test_empty_child_contributes_zero_vectors(self):
        docs_a = [{"x": 2}, {"x": 1}]
        features = select_features([docs_a, []], FeatureSelectionConfig(max_features=5, min_document_frequency=1))
        assert "x" in features


class TestNormalizeLogScores:
    def test_probabilities_sum_to_one(self):
        probs = normalize_log_scores({1: -1000.0, 2: -1001.0, 3: -950.0})
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs[3] > probs[1] > probs[2]

    def test_empty_input(self):
        assert normalize_log_scores({}) == {}

    @given(st.dictionaries(st.integers(0, 5), st.floats(-2000, 0), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_normalisation_property(self, scores):
        probs = normalize_log_scores(scores)
        assert sum(probs.values()) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in probs.values())


class TestTraining:
    def build_tiny_model(self):
        taxonomy = TopicTaxonomy.from_spec({"cycling": {}, "music": {}})
        taxonomy.mark_good(["cycling"])
        store = examples_from_documents(
            taxonomy,
            [
                ("cycling", ["bike", "bike", "wheel"]),
                ("cycling", ["bike", "race"]),
                ("music", ["guitar", "guitar", "song"]),
                ("music", ["song", "stage"]),
            ],
        )
        # With four tiny documents the default document-frequency cut would
        # discard most terms; keep them all so the example is clear-cut.
        config = TrainingConfig(features=FeatureSelectionConfig(min_document_frequency=1))
        trainer = ClassifierTrainer(taxonomy, store, config)
        return taxonomy, trainer.train()

    def test_parameter_estimation_matches_equation_1(self):
        taxonomy, model = self.build_tiny_model()
        root = model.nodes[taxonomy.root.cid]
        cycling = taxonomy.by_path("cycling").cid
        # Vocabulary of D(root) = {bike, wheel, race, guitar, song, stage} = 6 terms.
        # Total term count in D(cycling) = 5; count(bike) = 3.
        expected_theta = (1 + 3) / (6 + 5)
        assert root.logtheta[(cycling, term_id("bike"))] == pytest.approx(math.log(expected_theta))
        assert root.logdenom[cycling] == pytest.approx(math.log(11))
        assert root.logprior[cycling] == pytest.approx(math.log(0.5))

    def test_priors_reflect_class_sizes(self):
        taxonomy = TopicTaxonomy.from_spec({"a": {}, "b": {}})
        taxonomy.mark_good(["a"])
        store = examples_from_documents(
            taxonomy,
            [("a", ["x"])] * 3 + [("b", ["y"])],
        )
        model = ClassifierTrainer(taxonomy, store).train()
        root = model.nodes[taxonomy.root.cid]
        assert root.logprior[taxonomy.by_path("a").cid] == pytest.approx(math.log(0.75))

    def test_classification_of_obvious_documents(self):
        taxonomy, model = self.build_tiny_model()
        bike_doc = term_frequencies(["bike", "wheel", "bike"])
        music_doc = term_frequencies(["guitar", "song"])
        assert model.relevance(bike_doc) > 0.9
        assert model.relevance(music_doc) < 0.1
        assert model.best_leaf(bike_doc) == taxonomy.by_path("cycling").cid
        assert model.hard_focus_accepts(bike_doc)
        assert not model.hard_focus_accepts(music_doc)

    def test_unknown_terms_fall_back_to_priors(self):
        taxonomy, model = self.build_tiny_model()
        unknown = term_frequencies(["zzz", "qqq"])
        assert model.relevance(unknown) == pytest.approx(0.5, abs=0.05)

    def test_nodes_without_examples_are_skipped(self):
        taxonomy = TopicTaxonomy.from_spec({"a": {"a1": {}, "a2": {}}, "b": {}})
        taxonomy.mark_good(["b"])
        store = examples_from_documents(taxonomy, [("b", ["x", "y"]), ("b", ["x"])])
        model = ClassifierTrainer(taxonomy, store).train()
        # Only the root can be modelled (child "a" has no examples at all).
        assert taxonomy.by_path("a").cid not in model.nodes
        root = model.nodes[taxonomy.root.cid]
        assert root.child_cids == [taxonomy.by_path("b").cid]

    def test_model_statistics_counters(self, trained_model):
        assert trained_model.parameter_count() > 0
        assert trained_model.feature_count() > 0
        assert trained_model.internal_cids()


class TestModelPosteriors:
    def test_posteriors_sum_to_one_per_level(self, trained_model, small_web):
        doc = term_frequencies(small_web.page(small_web.pages_of_topic("recreation/cycling")[0]).tokens)
        posteriors = trained_model.node_posteriors(doc)
        root_children = trained_model.taxonomy.root.children
        total = sum(posteriors.get(c.cid, 0.0) for c in root_children)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_relevance_between_zero_and_one(self, trained_model, small_web):
        for url in small_web.urls()[:30]:
            doc = term_frequencies(small_web.page(url).tokens)
            assert 0.0 <= trained_model.relevance(doc) <= 1.0 + 1e-12

    def test_relevance_separates_topics(self, trained_model, small_web):
        cycling = small_web.pages_of_topic("recreation/cycling")[5]
        music = small_web.pages_of_topic("arts/music")[5]
        cycling_doc = term_frequencies(small_web.page(cycling).tokens)
        music_doc = term_frequencies(small_web.page(music).tokens)
        assert trained_model.relevance(cycling_doc) > 0.9
        assert trained_model.relevance(music_doc) < 0.1
