"""Shared test fixtures.

Heavy artefacts (the synthetic web, the trained classifier) are built once
per session from a deliberately small configuration so the whole suite
stays fast while still exercising every subsystem end to end.
"""

from __future__ import annotations

import pytest

from repro.classifier.training import ClassifierTrainer, ModelInstaller
from repro.core.schema import create_focus_database
from repro.minidb import Database
from repro.taxonomy.examples import generate_examples
from repro.taxonomy.tree import TopicTaxonomy
from repro.webgraph.graph import SyntheticWebBuilder, WebConfig

GOOD_TOPIC = "recreation/cycling"


def small_web_config(seed: int = 11) -> WebConfig:
    """A miniature synthetic web used across the test suite."""
    return WebConfig(
        seed=seed,
        pages_per_topic=40,
        topic_page_overrides={GOOD_TOPIC: 120},
        background_pages=260,
        mean_doc_length=60,
        popular_sites=6,
        servers_per_topic=4,
        background_servers=12,
        pages_per_server=12,
        link_locality_window=15,
        seed_region_fraction=0.3,
    )


@pytest.fixture(scope="session")
def small_web():
    return SyntheticWebBuilder(small_web_config()).build()


@pytest.fixture(scope="session")
def taxonomy(small_web):
    tax = TopicTaxonomy.from_topic_tree(small_web.topic_tree)
    tax.mark_good([GOOD_TOPIC])
    return tax


@pytest.fixture(scope="session")
def examples(taxonomy, small_web):
    return generate_examples(taxonomy, small_web, per_leaf=12, seed=23)


@pytest.fixture(scope="session")
def trained_model(taxonomy, examples):
    return ClassifierTrainer(taxonomy, examples).train()


@pytest.fixture(scope="session")
def model_database(trained_model):
    """A database with the classifier tables installed (shared, read-only use)."""
    database = Database(buffer_pool_pages=1024)
    ModelInstaller(database).install(trained_model)
    return database


@pytest.fixture()
def crawl_database():
    """A fresh crawl database (CRAWL/LINK/HUBS/AUTH) per test."""
    return create_focus_database(buffer_pool_pages=512)


@pytest.fixture()
def empty_database():
    return Database(buffer_pool_pages=64)
