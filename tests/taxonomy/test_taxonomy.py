"""Tests for the topic taxonomy (class tree, marking) and example stores."""

import pytest

from repro.taxonomy.examples import ExampleDocument, examples_from_documents, generate_examples
from repro.taxonomy.tree import ROOT_CID, NodeMark, TopicTaxonomy
from repro.webgraph.topics import default_topic_tree


@pytest.fixture()
def taxonomy():
    return TopicTaxonomy.from_topic_tree(default_topic_tree())


class TestTaxonomyConstruction:
    def test_root_has_cid_one_and_empty_path(self, taxonomy):
        assert taxonomy.root.cid == ROOT_CID
        assert taxonomy.root.path == ""
        assert taxonomy.node(ROOT_CID) is taxonomy.root

    def test_cids_are_unique_and_parents_come_first(self, taxonomy):
        cids = [node.cid for node in taxonomy.nodes()]
        assert len(set(cids)) == len(cids)
        for node in taxonomy.nodes():
            if node.parent is not None:
                assert node.parent.cid < node.cid

    def test_lookup_by_path(self, taxonomy):
        node = taxonomy.by_path("recreation/cycling")
        assert node.name == "cycling" and node.is_leaf
        assert "recreation/cycling" in taxonomy
        with pytest.raises(KeyError):
            taxonomy.by_path("no/such")
        with pytest.raises(KeyError):
            taxonomy.node(9999)

    def test_leaves_and_internal_nodes_partition(self, taxonomy):
        leaves = set(n.cid for n in taxonomy.leaves())
        internal = set(n.cid for n in taxonomy.internal_nodes())
        assert leaves.isdisjoint(internal)
        assert leaves | internal == {n.cid for n in taxonomy.nodes()}

    def test_from_spec(self):
        taxonomy = TopicTaxonomy.from_spec({"a": {"b": {}}})
        assert taxonomy.by_path("a/b").is_leaf


class TestMarking:
    def test_mark_good_sets_path_and_subsumed(self, taxonomy):
        taxonomy.mark_good(["recreation/cycling"])
        assert taxonomy.by_path("recreation/cycling").mark is NodeMark.GOOD
        assert taxonomy.by_path("recreation").mark is NodeMark.PATH
        assert taxonomy.by_path("arts").mark is NodeMark.NULL
        assert taxonomy.good_paths() == ["recreation/cycling"]

    def test_internal_good_topic_subsumes_children(self, taxonomy):
        taxonomy.mark_good(["business/investment"])
        assert taxonomy.by_path("business/investment/mutual_funds").mark is NodeMark.SUBSUMED
        assert taxonomy.is_good_or_subsumed(
            taxonomy.by_path("business/investment/stocks").cid
        )

    def test_nested_good_topics_rejected(self, taxonomy):
        with pytest.raises(ValueError):
            taxonomy.mark_good(["business/investment", "business/investment/stocks"])

    def test_remarking_clears_previous_marks(self, taxonomy):
        taxonomy.mark_good(["recreation/cycling"])
        taxonomy.mark_good(["health/hiv_aids"])
        assert taxonomy.by_path("recreation/cycling").mark is NodeMark.NULL
        assert taxonomy.by_path("health").mark is NodeMark.PATH

    def test_add_good_is_the_stagnation_fix(self, taxonomy):
        taxonomy.mark_good(["business/investment/mutual_funds"])
        taxonomy.add_good("business/investment")
        marks = {n.path: n.mark for n in taxonomy.nodes()}
        assert marks["business/investment"] is NodeMark.GOOD
        assert marks["business/investment/mutual_funds"] is NodeMark.SUBSUMED
        assert marks["business"] is NodeMark.PATH

    def test_good_ancestor_of(self, taxonomy):
        taxonomy.mark_good(["recreation"])
        cycling = taxonomy.by_path("recreation/cycling")
        assert taxonomy.good_ancestor_of(cycling.cid).path == "recreation"
        arts = taxonomy.by_path("arts/music")
        assert taxonomy.good_ancestor_of(arts.cid) is None

    def test_evaluation_frontier_is_root_plus_path_internal_nodes(self, taxonomy):
        taxonomy.mark_good(["business/investment/mutual_funds"])
        frontier = taxonomy.evaluation_frontier()
        paths = [n.path for n in frontier]
        assert paths == ["", "business", "business/investment"]

    def test_mark_good_multiple_topics(self, taxonomy):
        taxonomy.mark_good(["recreation/cycling", "health/first_aid"])
        assert len(taxonomy.good_nodes()) == 2
        assert taxonomy.by_path("health").mark is NodeMark.PATH
        assert taxonomy.by_path("recreation").mark is NodeMark.PATH

    def test_16_bit_cid_limit(self):
        # A pathological spec with too many nodes must be refused, not wrap around.
        wide_spec = {f"t{i}": {} for i in range(300)}
        spec = {f"g{j}": dict(wide_spec) for j in range(250)}
        with pytest.raises(ValueError):
            TopicTaxonomy.from_spec(spec)


class TestExamples:
    def test_generate_examples_per_leaf(self, taxonomy, small_web):
        store = generate_examples(taxonomy, small_web, per_leaf=5, seed=3)
        leaves_with_vocab = [
            leaf for leaf in taxonomy.leaves() if leaf.path in small_web.vocabulary.topic_terms
        ]
        assert store.total() == 5 * len(leaves_with_vocab)
        cycling = taxonomy.by_path("recreation/cycling")
        assert len(store.for_class(cycling.cid)) == 5

    def test_for_subtree_aggregates_children(self, taxonomy, small_web):
        store = generate_examples(taxonomy, small_web, per_leaf=4, seed=3)
        recreation = taxonomy.by_path("recreation")
        subtree_docs = store.for_subtree(taxonomy, recreation.cid)
        assert len(subtree_docs) == 4 * len(recreation.children)

    def test_restricting_leaf_paths(self, taxonomy, small_web):
        store = generate_examples(
            taxonomy, small_web, per_leaf=3, leaf_paths=["recreation/cycling"]
        )
        assert store.total() == 3

    def test_examples_from_documents(self, taxonomy):
        store = examples_from_documents(
            taxonomy,
            [("recreation/cycling", ["a", "b", "a"]), ("arts/music", ["c"])],
        )
        cid = taxonomy.by_path("recreation/cycling").cid
        assert store.for_class(cid)[0].term_frequencies() == {"a": 2, "b": 1}
        assert store.classes() == sorted(
            [cid, taxonomy.by_path("arts/music").cid]
        )

    def test_example_document_term_frequencies(self):
        doc = ExampleDocument(cid=5, tokens=["x", "x", "y"])
        assert doc.term_frequencies() == {"x": 2, "y": 1}
