"""JobManager: K concurrent crawl jobs, each bit-identical to a solo run."""

import pytest

from repro.core.config import FocusConfig, JobSpec
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.crawler.policies import FetchPolicy
from repro.service import JobManager

GOOD = "recreation/cycling"


@pytest.fixture(scope="module")
def system(small_web):
    config = FocusConfig(
        good_topics=(GOOD,),
        examples_per_leaf=12,
        seed_count=10,
        crawler=CrawlerConfig(max_pages=120, distill_every=60),
    )
    focus = FocusSystem.from_web(small_web, [GOOD], config)
    focus.train()
    return focus


@pytest.fixture(scope="module")
def solo_runs(system):
    """Reference solo crawls, one per failure seed used by the fleet test."""
    runs = {}
    for seed in range(8):
        result = system.crawl(max_pages=60, fetch_failure_seed=seed)
        runs[seed] = (
            list(result.trace.fetched_urls),
            [visit.relevance for visit in result.trace.visits],
        )
    return runs


class TestConcurrentDeterminism:
    def test_eight_concurrent_jobs_match_their_solo_runs(self, system, solo_runs):
        manager = JobManager(
            system, policy=FetchPolicy(max_inflight=4), rounds_per_step=1
        )
        ids = {
            seed: manager.submit(
                JobSpec(max_pages=60, fetch_failure_seed=seed, name=f"tenant-{seed}")
            )
            for seed in range(8)
        }
        manager.run_until_idle()
        for seed, job_id in ids.items():
            summary = manager.result_summary(job_id)
            assert summary["status"] == "completed", seed
            urls, relevance = solo_runs[seed]
            assert summary["fetched_urls"] == urls, seed
            assert summary["relevance"] == relevance, seed
        assert manager.pool.total_fetches > 0

    def test_round_robin_interleaves_all_jobs(self, system):
        manager = JobManager(system, rounds_per_step=1)
        ids = [
            manager.submit(JobSpec(max_pages=60, fetch_failure_seed=seed))
            for seed in range(3)
        ]
        manager.step_once()
        progress = [manager.progress(job_id)["pages_fetched"] for job_id in ids]
        # One sweep = one engine round each: every job advanced, none finished.
        assert all(pages > 0 for pages in progress)
        assert all(pages < 60 for pages in progress)
        manager.run_until_idle()
        assert all(job["status"] == "completed" for job in manager.jobs())


class TestLifecycle:
    def test_pause_resume_mid_fleet_is_bit_identical(self, system, solo_runs):
        manager = JobManager(system, rounds_per_step=1)
        paused_id = manager.submit(JobSpec(max_pages=60, fetch_failure_seed=2))
        other_id = manager.submit(JobSpec(max_pages=60, fetch_failure_seed=5))
        manager.step_once()
        manager.pause(paused_id)
        assert manager.progress(paused_id)["status"] == "paused"
        manager.run_until_idle()  # the other job runs to completion alone
        assert manager.progress(other_id)["status"] == "completed"
        manager.resume(paused_id)
        manager.run_until_idle()
        summary = manager.result_summary(paused_id)
        urls, relevance = solo_runs[2]
        assert summary["fetched_urls"] == urls
        assert summary["relevance"] == relevance

    def test_fetch_budget_exhaustion(self, system):
        manager = JobManager(system, rounds_per_step=1)
        job_id = manager.submit(
            JobSpec(max_pages=120, fetch_failure_seed=3, fetch_budget=30)
        )
        manager.run_until_idle()
        summary = manager.result_summary(job_id)
        assert summary["status"] == "exhausted"
        assert summary["fetch_attempts"] >= 30
        assert summary["pages_fetched"] < 120

    def test_cancel(self, system):
        manager = JobManager(system, rounds_per_step=1)
        job_id = manager.submit(JobSpec(max_pages=120, fetch_failure_seed=3))
        manager.step_once()
        manager.cancel(job_id)
        summary = manager.result_summary(job_id)
        assert summary["status"] == "cancelled"
        assert 0 < summary["pages_fetched"] < 120
        assert not manager.step_once()

    def test_unknown_job_raises_keyerror(self, system):
        manager = JobManager(system)
        with pytest.raises(KeyError, match="job-9999"):
            manager.progress("job-9999")

    def test_latencies_cover_finished_jobs(self, system):
        manager = JobManager(system)
        manager.submit(JobSpec(max_pages=30, fetch_failure_seed=1))
        manager.submit(JobSpec(max_pages=30, fetch_failure_seed=2))
        assert manager.latencies() == []
        manager.run_until_idle()
        latencies = manager.latencies()
        assert len(latencies) == 2
        assert all(latency > 0 for latency in latencies)


class TestWorkerThread:
    def test_background_worker_drains_jobs(self, system, solo_runs):
        manager = JobManager(system, rounds_per_step=2)
        manager.start()
        try:
            job_id = manager.submit(JobSpec(max_pages=60, fetch_failure_seed=4))
            import time

            deadline = time.monotonic() + 30
            while manager.progress(job_id)["status"] != "completed":
                assert time.monotonic() < deadline, "job did not finish in time"
                time.sleep(0.01)
        finally:
            manager.stop()
        urls, relevance = solo_runs[4]
        summary = manager.result_summary(job_id)
        assert summary["fetched_urls"] == urls
        assert summary["relevance"] == relevance


def sharded_crawler_config() -> CrawlerConfig:
    # The service wraps every job's transport in the shared pool, which
    # cannot cross a process boundary: sharded jobs run in-process.
    return CrawlerConfig(
        engine="sharded",
        shards=2,
        shard_runner="inprocess",
        max_pages=60,
        batch_size=8,
        distill_every=30,
    )


class TestShardedJobs:
    def test_sharded_job_is_bit_identical_to_solo(self, system):
        solo = system.start(
            JobSpec(max_pages=60, crawler=sharded_crawler_config())
        ).run()
        manager = JobManager(system, rounds_per_step=1)
        job_id = manager.submit(
            JobSpec(max_pages=60, crawler=sharded_crawler_config(), name="sharded")
        )
        other = manager.submit(JobSpec(max_pages=60, fetch_failure_seed=5))
        manager.run_until_idle()
        summary = manager.result_summary(job_id)
        assert summary["status"] == "completed"
        assert summary["fetched_urls"] == list(solo.trace.fetched_urls)
        assert summary["relevance"] == [v.relevance for v in solo.trace.visits]
        assert manager.result_summary(other)["status"] == "completed"

    def test_sharded_job_stats_aggregate_across_shards(self, system):
        manager = JobManager(system, rounds_per_step=1)
        job_id = manager.submit(
            JobSpec(max_pages=60, crawler=sharded_crawler_config())
        )
        manager.run_until_idle()
        stats = manager.stats(job_id)
        io = stats["io"]
        assert len(io["shards"]) == 2
        for key, total in io.items():
            if key == "shards":
                continue
            if isinstance(total, (int, float)):
                parts = sum(shard.get(key, 0) for shard in io["shards"])
                assert total == pytest.approx(parts), key
        timings = stats["stage_timings"]
        assert {"fetch", "classify", "write"} <= set(timings)
        assert stats["pool"]["total_fetches"] > 0
