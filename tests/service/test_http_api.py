"""The crawl service's HTTP API, driven entirely over the wire."""

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core.config import FocusConfig, JobSpec
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.service import CrawlService, JobManager

GOOD = "recreation/cycling"
TERMINAL = ("completed", "exhausted", "cancelled", "failed")


@pytest.fixture(scope="module")
def system(small_web):
    config = FocusConfig(
        good_topics=(GOOD,),
        examples_per_leaf=12,
        seed_count=10,
        crawler=CrawlerConfig(max_pages=120, distill_every=60),
    )
    focus = FocusSystem.from_web(small_web, [GOOD], config)
    focus.train()
    return focus


@pytest.fixture(scope="module")
def solo(system):
    result = system.crawl(max_pages=60, fetch_failure_seed=3)
    return (
        list(result.trace.fetched_urls),
        [visit.relevance for visit in result.trace.visits],
    )


@pytest.fixture()
def service(system):
    with CrawlService(JobManager(system, rounds_per_step=1)) as running:
        yield running


def call(url, payload=None, method=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else None,
        method=method or ("POST" if payload is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def wait_for_status(base, job_id, statuses, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        progress = call(f"{base}/jobs/{job_id}")
        if progress["status"] in statuses:
            return progress
        assert time.monotonic() < deadline, f"timed out waiting for {statuses}"
        time.sleep(0.01)


class TestEndpoints:
    def test_submit_poll_result_round_trip(self, service, solo):
        base = service.url
        spec = JobSpec(max_pages=60, fetch_failure_seed=3, name="wire-job")
        job_id = call(f"{base}/jobs", spec.to_dict())["id"]

        progress = wait_for_status(base, job_id, TERMINAL)
        assert progress["status"] == "completed"
        assert progress["pages_fetched"] == 60

        result = call(f"{base}/jobs/{job_id}/result")
        urls, relevance = solo
        assert result["fetched_urls"] == urls
        assert result["relevance"] == relevance
        assert result["latency_s"] > 0

        harvest = call(f"{base}/jobs/{job_id}/harvest?window=20")
        assert len(harvest) == 60
        assert all(len(point) == 2 for point in harvest)

        stats = call(f"{base}/jobs/{job_id}/stats")
        assert set(stats) == {"io", "stage_timings", "pipeline", "pool", "crawl"}
        assert stats["pipeline"]["frontier"]["heap_size"] >= 0
        assert "stale_ratio" in stats["pipeline"]["prefetch"]
        assert stats["crawl"]["visited"] == 60
        assert stats["crawl"]["average_relevance"] > 0

        buckets = call(f"{base}/jobs/{job_id}/harvest?bucket=20")
        assert sum(row["pages"] for row in buckets) == 60
        assert all(set(row) == {"bucket", "avg_relevance", "pages"} for row in buckets)

        listing = call(f"{base}/jobs")
        assert [job["id"] for job in listing] == [job_id]
        health = call(f"{base}/health")
        assert health["status"] == "ok"
        assert health["jobs"] == 1

    def test_pause_resume_over_http_is_bit_identical(self, service, solo):
        base = service.url
        job_id = call(
            f"{base}/jobs", JobSpec(max_pages=60, fetch_failure_seed=3).to_dict()
        )["id"]
        # Pause as soon as the job has made some progress.
        deadline = time.monotonic() + 30
        while True:
            progress = call(f"{base}/jobs/{job_id}")
            if progress["pages_fetched"] > 0 or progress["status"] in TERMINAL:
                break
            assert time.monotonic() < deadline
            time.sleep(0.005)
        if progress["status"] not in TERMINAL:
            paused = call(f"{base}/jobs/{job_id}/pause", {})
            assert paused["status"] == "paused"
            snapshot = call(f"{base}/jobs/{job_id}")["pages_fetched"]
            time.sleep(0.05)  # the worker must not advance a paused job
            assert call(f"{base}/jobs/{job_id}")["pages_fetched"] == snapshot
            resumed = call(f"{base}/jobs/{job_id}/resume", {})
            assert resumed["status"] in ("pending", "running", "completed")
        wait_for_status(base, job_id, ("completed",))
        result = call(f"{base}/jobs/{job_id}/result")
        urls, relevance = solo
        assert result["fetched_urls"] == urls
        assert result["relevance"] == relevance

    def test_cancel_over_http(self, service):
        base = service.url
        job_id = call(
            f"{base}/jobs", JobSpec(max_pages=120, fetch_failure_seed=7).to_dict()
        )["id"]
        cancelled = call(f"{base}/jobs/{job_id}/cancel", {})
        assert cancelled["status"] == "cancelled"
        result = call(f"{base}/jobs/{job_id}/result")
        assert result["status"] == "cancelled"


class TestQueryEndpoint:
    """Read-only SQL over the wire: ``GET /jobs/{id}/query?sql=...``."""

    @pytest.fixture()
    def finished_job(self, service):
        base = service.url
        job_id = call(
            f"{base}/jobs", JobSpec(max_pages=60, fetch_failure_seed=3).to_dict()
        )["id"]
        wait_for_status(base, job_id, ("completed",))
        return base, job_id

    def query_url(self, base, job_id, sql, **extra):
        params = {"sql": sql, **extra}
        return f"{base}/jobs/{job_id}/query?{urllib.parse.urlencode(params)}"

    def test_select_over_the_wire(self, finished_job):
        base, job_id = finished_job
        rows = call(
            self.query_url(
                base,
                job_id,
                "select count(*) n from CRAWL where status = 'visited'",
            )
        )
        assert rows == [{"n": 60}]

    def test_graph_predicate_and_explain(self, finished_job):
        base, job_id = finished_job
        root = call(
            self.query_url(
                base, job_id, "select kcid from TAXONOMY where pcid is null"
            )
        )[0]["kcid"]
        sql = f"select count(*) n from TAXONOMY where in_subtree(kcid, {root})"
        rows = call(self.query_url(base, job_id, sql))
        assert rows[0]["n"] >= 1
        plan = call(self.query_url(base, job_id, f"explain {sql}"))
        assert any("IndexRangeScan" in row["plan"] for row in plan)

    def test_row_limit_applies(self, finished_job):
        base, job_id = finished_job
        rows = call(self.query_url(base, job_id, "select oid from CRAWL", limit=7))
        assert len(rows) == 7

    def test_mutation_statements_are_400(self, finished_job):
        base, job_id = finished_job
        for sql in (
            "delete from CRAWL",
            "update CRAWL set status = 'visited'",
            "insert into CRAWL (oid) values (1)",
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                call(self.query_url(base, job_id, sql))
            assert excinfo.value.code == 400, sql

    def test_missing_and_malformed_sql_are_400(self, finished_job):
        base, job_id = finished_job
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{base}/jobs/{job_id}/query")
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(self.query_url(base, job_id, "select from from"))
        assert excinfo.value.code == 400


class TestErrors:
    def test_unknown_job_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{service.url}/jobs/job-9999")
        assert excinfo.value.code == 404

    def test_unknown_endpoint_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{service.url}/nope")
        assert excinfo.value.code == 404

    def test_bad_spec_is_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{service.url}/jobs", {"max_pages": 0})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{service.url}/jobs", {"no_such_field": 1})
        assert excinfo.value.code == 400

    def test_result_of_a_running_job_is_400(self, service):
        job_id = call(
            f"{service.url}/jobs", JobSpec(max_pages=120, fetch_failure_seed=9).to_dict()
        )["id"]
        call(f"{service.url}/jobs/{job_id}/pause", {})  # freeze it mid-crawl
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{service.url}/jobs/{job_id}/result")
        assert excinfo.value.code == 400

    def test_illegal_transition_is_400(self, service):
        base = service.url
        job_id = call(
            f"{base}/jobs", JobSpec(max_pages=30, fetch_failure_seed=1).to_dict()
        )["id"]
        wait_for_status(base, job_id, TERMINAL)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(f"{base}/jobs/{job_id}/pause", {})
        assert excinfo.value.code == 400
