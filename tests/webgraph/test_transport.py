"""Fetch-transport contract tests.

The transports' determinism contract is what the async fetch pipeline's
reproducibility (and checkpoint/resume bit-identity) rests on: every
random draw happens inside ``prepare``, in submission order, so the
order in which concurrent fetches *complete* can never change the
failure/latency stream.
"""

import asyncio

import pytest

from repro.webgraph.fetch import Fetcher, FetchStatus
from repro.webgraph.servers import DEFAULT_MEAN_LATENCY_MS
from repro.webgraph.transport import (
    TRANSPORTS,
    HttpTransport,
    LatencyTransport,
    SimulatedTransport,
    TransportUnavailable,
    build_transport,
)

SEED = 5


def sample_urls(web, count=40):
    """A deterministic spread of URLs across many servers."""
    return sorted(web.pages)[:count]


def fresh_transport(web, **latency_kwargs):
    web.servers.reseed(SEED)
    fetcher = Fetcher(web, failure_seed=SEED)
    inner = SimulatedTransport(fetcher)
    if latency_kwargs:
        return LatencyTransport(inner, **latency_kwargs)
    return inner


def drain(transport, urls, order):
    """Prepare *urls* in order, then await completions in *order*."""
    async def run():
        pendings = [transport.prepare(url) for url in urls]
        results = [None] * len(urls)

        async def one(index):
            results[index] = await transport.wait(pendings[index])

        await asyncio.gather(*[one(index) for index in order])
        return results

    return asyncio.run(run())


class TestSimulatedTransport:
    def test_fetch_delegates_bit_for_bit(self, small_web):
        urls = sample_urls(small_web)
        small_web.servers.reseed(SEED)
        reference = [Fetcher(small_web, failure_seed=SEED).fetch(u) for u in urls]
        small_web.servers.reseed(SEED)
        transport = SimulatedTransport(Fetcher(small_web, failure_seed=SEED))
        via_transport = [transport.fetch(u) for u in urls]
        assert [(r.url, r.status, r.latency_ms) for r in reference] == [
            (r.url, r.status, r.latency_ms) for r in via_transport
        ]
        assert [r.tokens for r in reference] == [r.tokens for r in via_transport]

    def test_prepare_wait_equals_fetch(self, small_web):
        urls = sample_urls(small_web)
        sync_transport = fresh_transport(small_web)
        sync = [sync_transport.fetch(u) for u in urls]
        transport = fresh_transport(small_web)
        in_order = drain(transport, urls, order=range(len(urls)))
        assert [(r.status, r.latency_ms) for r in sync] == [
            (r.status, r.latency_ms) for r in in_order
        ]

    def test_failure_stream_immune_to_completion_interleaving(self, small_web):
        """Same seed => same failure/latency stream, any completion order.

        The ServerPool RNG is one shared sequential generator; because
        draws happen at prepare() time, awaiting the fetches back to
        front (or any shuffle) must yield identical per-URL outcomes and
        leave the generator in the identical end state.
        """
        urls = sample_urls(small_web)
        forward = fresh_transport(small_web)
        results_forward = drain(forward, urls, order=range(len(urls)))
        state_forward = small_web.servers.rng_state()

        backward = fresh_transport(small_web)
        results_backward = drain(backward, urls, order=reversed(range(len(urls))))
        state_backward = small_web.servers.rng_state()

        assert [(r.url, r.status, r.latency_ms) for r in results_forward] == [
            (r.url, r.status, r.latency_ms) for r in results_backward
        ]
        assert state_forward == state_backward
        assert forward.state_snapshot() == backward.state_snapshot()

    def test_snapshot_restore_resumes_stream(self, small_web):
        # The server pool's stream is shared web state checkpointed
        # separately (CheckpointManager.server_rng_state); rewind both,
        # as a crawl resume does.
        urls = sample_urls(small_web, count=30)
        transport = fresh_transport(small_web)
        for url in urls[:10]:
            transport.fetch(url)
        snapshot = transport.state_snapshot()
        pool_state = small_web.servers.rng_state()
        tail_a = [(transport.fetch(u).status, transport.fetch(u).latency_ms) for u in urls[10:20]]
        transport.restore_state(snapshot)
        small_web.servers.restore_rng(pool_state)
        tail_b = [(transport.fetch(u).status, transport.fetch(u).latency_ms) for u in urls[10:20]]
        assert tail_a == tail_b

    def test_order_sensitivity_tracks_failure_simulation(self, small_web):
        assert SimulatedTransport(Fetcher(small_web)).order_sensitive
        assert not SimulatedTransport(
            Fetcher(small_web, simulate_failures=False)
        ).order_sensitive


class TestLatencyTransport:
    # time_scale=0 keeps the tests instant: delays are drawn and recorded
    # but never slept.
    def test_same_seed_same_delays_and_results(self, small_web):
        urls = sample_urls(small_web)
        # fresh_transport reseeds the shared server pool, so each
        # transport must be created *and drained* before the next.
        first = fresh_transport(small_web, mean_latency_ms=5.0, seed=9, time_scale=0.0)
        pending_first = [first.prepare(u) for u in urls]
        second = fresh_transport(small_web, mean_latency_ms=5.0, seed=9, time_scale=0.0)
        pending_second = [second.prepare(u) for u in urls]
        assert [(p.result.status, p.attempts) for p in pending_first] == [
            (p.result.status, p.attempts) for p in pending_second
        ]
        assert first.injected_s == second.injected_s

    def test_jitter_bounds_delay(self, small_web):
        mean_ms, jitter = 8.0, 0.25
        transport = fresh_transport(
            small_web, mean_latency_ms=mean_ms, jitter=jitter, per_server={}
        )
        # Every per-host override is absent, so the global mean applies.
        for url in sample_urls(small_web, count=20):
            pending = transport.prepare(url)
            injected_ms = pending.delay_s * 1000.0
            assert mean_ms * (1 - jitter) <= injected_ms <= mean_ms * (1 + jitter)

    def test_timeouts_exhaust_retries_into_server_error(self, small_web):
        transport = fresh_transport(
            small_web,
            timeout_rate=0.999,
            timeout_ms=10.0,
            max_retries=2,
            time_scale=0.0,
        )
        pending = transport.prepare(sample_urls(small_web)[0])
        assert pending.result.status is FetchStatus.SERVER_ERROR
        assert pending.attempts == 3  # initial try + 2 retries, all timed out
        assert transport.timeouts == 3
        # Each timed-out attempt costs the full timeout budget.
        assert pending.result.latency_ms == pytest.approx(30.0)

    def test_per_server_override_and_pool_profiles(self, small_web):
        urls = sample_urls(small_web)
        host = Fetcher(small_web).fetch(urls[0]).server
        transport = fresh_transport(
            small_web, mean_latency_ms=4.0, jitter=0.0, per_server={host: 40.0}
        )
        assert transport.prepare(urls[0]).delay_s == pytest.approx(0.040)

        small_web.servers.reseed(SEED)
        pooled = LatencyTransport.from_server_pool(
            SimulatedTransport(Fetcher(small_web, failure_seed=SEED)),
            small_web.servers,
            scale=0.5,
            jitter=0.0,
        )
        mean_ms, _ = small_web.servers.latency_profile(host)
        assert pooled.per_server[host] == pytest.approx(mean_ms * 0.5)

    def test_snapshot_restore_resumes_both_streams(self, small_web):
        urls = sample_urls(small_web, count=30)
        transport = fresh_transport(small_web, mean_latency_ms=5.0, time_scale=0.0)
        for url in urls[:10]:
            transport.prepare(url)
        snapshot = transport.state_snapshot()
        pool_state = small_web.servers.rng_state()
        tail_a = [
            (transport.prepare(u).result.status, transport.prepare(u).delay_s)
            for u in urls[10:20]
        ]
        transport.restore_state(snapshot)
        small_web.servers.restore_rng(pool_state)
        tail_b = [
            (transport.prepare(u).result.status, transport.prepare(u).delay_s)
            for u in urls[10:20]
        ]
        assert tail_a == tail_b

    def test_rejects_bad_parameters(self, small_web):
        with pytest.raises(ValueError):
            fresh_transport(small_web, jitter=1.5)
        with pytest.raises(ValueError):
            fresh_transport(small_web, timeout_rate=1.0)
        with pytest.raises(ValueError):
            fresh_transport(small_web, mean_latency_ms=-1.0)


class TestServerPoolProfiles:
    def test_latency_profile_defaults_for_unknown_hosts(self, small_web):
        mean_ms, failure_rate = small_web.servers.latency_profile("nowhere.example")
        assert mean_ms == DEFAULT_MEAN_LATENCY_MS
        assert 0.0 <= failure_rate < 1.0

    def test_latency_profile_reads_registered_profiles(self, small_web):
        name = small_web.servers.names()[0]
        profile = small_web.servers.get(name)
        assert small_web.servers.latency_profile(name) == (
            profile.mean_latency_ms,
            profile.failure_rate,
        )


class TestBuildTransport:
    def test_registry_names(self):
        assert set(TRANSPORTS) == {"simulated", "latency", "http"}

    def test_simulated_default(self, small_web):
        transport = build_transport("simulated", Fetcher(small_web))
        assert isinstance(transport, SimulatedTransport)

    def test_simulated_rejects_options(self, small_web):
        with pytest.raises(ValueError):
            build_transport("simulated", Fetcher(small_web), {"mean_latency_ms": 1.0})

    def test_latency_options_and_pool_derivation(self, small_web):
        transport = build_transport(
            "latency", Fetcher(small_web), {"mean_latency_ms": 3.0, "seed": 2}
        )
        assert isinstance(transport, LatencyTransport)
        assert transport.mean_latency_ms == 3.0
        pooled = build_transport(
            "latency",
            Fetcher(small_web),
            {"per_server_from_pool": True, "per_server_scale": 0.1},
        )
        assert pooled.per_server  # one entry per registered server
        assert len(pooled.per_server) == len(small_web.servers)

    def test_unknown_transport_rejected(self, small_web):
        with pytest.raises(ValueError):
            build_transport("carrier-pigeon", Fetcher(small_web))

    def test_http_transport_aiohttp_backend_is_import_guarded(self):
        try:
            import aiohttp  # noqa: F401
        except ImportError:
            with pytest.raises(TransportUnavailable):
                HttpTransport(backend="aiohttp")
        else:  # pragma: no cover - depends on the environment
            transport = HttpTransport(backend="aiohttp")
            assert transport.backend_name == "aiohttp"
            transport.close()

    def test_http_transport_default_backend_always_constructs(self):
        # "auto" falls back to the stdlib urllib backend, so real-web
        # fetching (and cassette recording) works without aiohttp.
        transport = HttpTransport()
        try:
            assert transport.backend_name in ("aiohttp", "stdlib")
            assert not transport.order_sensitive
            pending = transport.prepare("http://example.org/")
            assert pending.result is None
            assert len(pending.backoffs) == transport.max_retries
        finally:
            transport.close()

    def test_http_transport_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            HttpTransport(backend="smoke-signals")


class TestHtmlParsing:
    def test_parse_html_tokens_and_links(self):
        from repro.webgraph.transport import parse_html

        html = """
        <html><head><style>body { color: red }</style>
        <script>var x = 1;</script></head>
        <body><h1>Cycling Hubs</h1>
        <a href="/local/page">rel</a>
        <a href="https://other.example/abs">abs</a>
        <a href="#fragment-only">skip</a>
        </body></html>
        """
        tokens, links = parse_html(html, base_url="http://example.org/dir/index.html")
        assert "cycling" in tokens and "hubs" in tokens
        assert "var" not in tokens and "color" not in tokens  # script/style stripped
        assert links == [
            "http://example.org/local/page",
            "https://other.example/abs",
        ]

    def test_relative_urls_resolve_against_base(self):
        from repro.webgraph.transport import parse_html

        html = '<a href="sibling.html">s</a><a href="../up.html">u</a><a href="./same.html">d</a>'
        _, links = parse_html(html, base_url="http://example.org/a/b/index.html")
        assert links == [
            "http://example.org/a/b/sibling.html",
            "http://example.org/a/up.html",
            "http://example.org/a/b/same.html",
        ]

    def test_query_and_fragment_stripped(self):
        from repro.webgraph.transport import parse_html

        html = '<a href="/page.html?session=42&x=y">q</a><a href="/other.html?a=1">r</a>'
        _, links = parse_html(html, base_url="http://example.org/")
        assert links == ["http://example.org/page.html", "http://example.org/other.html"]

    def test_non_http_schemes_filtered(self):
        from repro.webgraph.transport import parse_html

        html = (
            '<a href="mailto:a@example.org">m</a>'
            '<a href="javascript:alert(1)">j</a>'
            '<a href="ftp://example.org/file">f</a>'
            '<a href="data:text/html,hi">d</a>'
            '<a href="https://ok.example/page">ok</a>'
        )
        _, links = parse_html(html, base_url="http://example.org/")
        assert links == ["https://ok.example/page"]

    def test_bare_host_link_gets_root_path(self):
        from repro.webgraph.transport import parse_html

        _, links = parse_html('<a href="http://example.org">x</a>', base_url="http://base.org/")
        assert links == ["http://example.org/"]

    def test_max_links_respected(self):
        from repro.webgraph.transport import parse_html

        html = "".join(f'<a href="/p{i}.html">x</a>' for i in range(50))
        _, links = parse_html(html, base_url="http://example.org/", max_links=7)
        assert len(links) == 7

    def test_malformed_href_never_raises(self):
        from repro.webgraph.transport import parse_html

        # urljoin raises ValueError on this pseudo-IPv6 authority; the
        # parser must drop the link, not crash.
        html = '<a href="http://[::1">bad</a><a href="/fine.html">good</a>'
        _, links = parse_html(html, base_url="http://example.org/")
        assert links == ["http://example.org/fine.html"]


class TestParseHtmlFuzz:
    """Seeded random-document fuzz: parse_html never crashes and its
    link invariants hold on arbitrary (including truncated) input."""

    FRAGMENTS = [
        "<html>", "</html>", "<body>", "<a href=", '<a href="', "'>", '">',
        "http://h{}.example/p{}", "https://h{}.example", "//h{}.example/q{}",
        "/rel/{}", "../up{}", "page{}.html?q={}#f{}", "mailto:x{}@y", "javascript:void(0)",
        "ftp://h{}/f", "data:text/plain,{}", "<script>var x{} = '<a href=\"/no{}\">';</script>",
        "<style>.c{} {{ color: red }}</style>", "word{} token{}", "<<<>>>", "&amp;", "\x00\x01",
        "<a href='http://[::{}'>", "<a href=''>", '<a href="   ">', "é中文",
    ]

    def _random_doc(self, rng):
        parts = []
        for _ in range(rng.randrange(0, 60)):
            fragment = self.FRAGMENTS[rng.randrange(len(self.FRAGMENTS))]
            parts.append(fragment.format(*[rng.randrange(100) for _ in range(4)][: fragment.count("{}")]))
        doc = "".join(parts)
        if rng.random() < 0.3:  # truncate mid-anything
            doc = doc[: rng.randrange(len(doc) + 1)]
        return doc

    def test_fuzz_no_crashes_and_absolute_url_invariants(self):
        import random

        from repro.webgraph.transport import parse_html

        rng = random.Random(1999)
        bases = [
            "http://base.example/dir/index.html",
            "https://base.example:8080/a/b.html",
            "http://127.0.0.1:8000/",
        ]
        for trial in range(300):
            doc = self._random_doc(rng)
            base = bases[trial % len(bases)]
            tokens, links = parse_html(doc, base_url=base, max_links=25)
            assert len(links) <= 25
            for link in links:
                # Absolute http(s), with authority, no fragment, no query.
                assert link.startswith(("http://", "https://")), link
                assert "#" not in link and "?" not in link, link
                from urllib.parse import urlsplit

                parts = urlsplit(link)
                assert parts.netloc, link
                assert parts.path.startswith("/"), link
            for token in tokens:
                assert token == token.lower()

    def test_fuzz_is_deterministic(self):
        import random

        from repro.webgraph.transport import parse_html

        docs = []
        rng = random.Random(77)
        for _ in range(30):
            docs.append(self._random_doc(rng))
        first = [parse_html(d, base_url="http://b.example/x/") for d in docs]
        second = [parse_html(d, base_url="http://b.example/x/") for d in docs]
        assert first == second


class _FakeContent:
    """A consuming stream with aiohttp's StreamReader semantics: read(n)
    returns as soon as any bytes are available (at most ``chunk`` per
    call when set, modelling a body delivered over several network
    chunks), and b"" only at EOF."""

    def __init__(self, body, chunk=None):
        self._body = body
        self._pos = 0
        self._chunk = chunk

    async def read(self, n=-1):
        limit = len(self._body) - self._pos if n < 0 else n
        if self._chunk is not None:
            limit = min(limit, self._chunk)
        piece = self._body[self._pos : self._pos + limit]
        self._pos += len(piece)
        return piece


class _FakeAiohttpResponse:
    def __init__(self, url, body, chunk):
        self.status = 200
        self.headers = {"Content-Type": "text/html; charset=utf-8"}
        self.url = url
        self.content = _FakeContent(body, chunk)

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        return False


class _FakeClientSession:
    created = 0
    response_body = b"<html><body>alpha beta</body></html>"
    response_chunk = None

    def __init__(self, *args, **kwargs):
        type(self).created += 1
        self.closed = False
        self.get_calls = 0

    def get(self, url, **kwargs):
        assert kwargs.get("allow_redirects") is False
        self.get_calls += 1
        return _FakeAiohttpResponse(
            url, type(self).response_body, type(self).response_chunk
        )

    async def close(self):
        self.closed = True


def _fake_aiohttp_module():
    import types

    module = types.ModuleType("aiohttp")
    module.ClientSession = _FakeClientSession
    module.ClientTimeout = lambda total=None: total
    module.ClientError = type("ClientError", (Exception,), {})
    return module


class TestSharedSession:
    """PR-10 bugfix pin: one ClientSession for the transport's lifetime,
    not one per fetch (verified against a fake aiohttp)."""

    def test_session_reused_across_fetches(self, monkeypatch):
        import sys

        _FakeClientSession.created = 0
        monkeypatch.setitem(sys.modules, "aiohttp", _fake_aiohttp_module())
        transport = HttpTransport(backend="aiohttp", honor_robots=False)
        try:
            assert transport.backend_name == "aiohttp"
            for i in range(5):
                result = transport.fetch(f"http://fake.example/page{i}.html")
                assert result.status is FetchStatus.OK
                assert result.tokens == ["alpha", "beta"]
            assert _FakeClientSession.created == 1
            assert transport._backend.requests == 5
        finally:
            transport.close()

    def test_close_closes_the_session(self, monkeypatch):
        import sys

        _FakeClientSession.created = 0
        monkeypatch.setitem(sys.modules, "aiohttp", _fake_aiohttp_module())
        transport = HttpTransport(backend="aiohttp", honor_robots=False)
        backend = transport._backend
        transport.fetch("http://fake.example/")
        session = backend._session
        assert session is not None and not session.closed
        transport.close()
        assert session.closed
        with pytest.raises(RuntimeError):
            transport.fetch("http://fake.example/again")


class TestChunkedBodyRead:
    """Regression pin: aiohttp's StreamReader.read(n) returns per-chunk,
    so the backend must loop to EOF — a single read silently truncated
    any multi-chunk body and disarmed the too-large gate."""

    def _transport(self, monkeypatch, body, chunk, **kwargs):
        import sys

        _FakeClientSession.created = 0
        monkeypatch.setattr(_FakeClientSession, "response_body", body)
        monkeypatch.setattr(_FakeClientSession, "response_chunk", chunk)
        monkeypatch.setitem(sys.modules, "aiohttp", _fake_aiohttp_module())
        return HttpTransport(backend="aiohttp", honor_robots=False, **kwargs)

    def test_multi_chunk_body_fully_read(self, monkeypatch):
        words = " ".join(f"tok{i}" for i in range(200))
        body = f"<html><body>{words}</body></html>".encode()
        transport = self._transport(monkeypatch, body, chunk=7)
        try:
            result = transport.fetch("http://fake.example/chunked.html")
            assert result.status is FetchStatus.OK
            assert len(result.tokens) == 200
            assert "tok199" in result.tokens  # the tail of the body survived
        finally:
            transport.close()

    def test_too_large_gate_fires_on_chunked_body(self, monkeypatch):
        body = b"<html><body>" + b"x" * 500 + b"</body></html>"
        transport = self._transport(
            monkeypatch, body, chunk=7, max_content_bytes=64
        )
        try:
            result = transport.fetch("http://fake.example/big.html")
            assert result.status is FetchStatus.SKIPPED
            assert result.detail == "too-large"
        finally:
            transport.close()
