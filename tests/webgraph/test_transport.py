"""Fetch-transport contract tests.

The transports' determinism contract is what the async fetch pipeline's
reproducibility (and checkpoint/resume bit-identity) rests on: every
random draw happens inside ``prepare``, in submission order, so the
order in which concurrent fetches *complete* can never change the
failure/latency stream.
"""

import asyncio

import pytest

from repro.webgraph.fetch import Fetcher, FetchStatus
from repro.webgraph.servers import DEFAULT_MEAN_LATENCY_MS
from repro.webgraph.transport import (
    TRANSPORTS,
    HttpTransport,
    LatencyTransport,
    SimulatedTransport,
    TransportUnavailable,
    build_transport,
)

SEED = 5


def sample_urls(web, count=40):
    """A deterministic spread of URLs across many servers."""
    return sorted(web.pages)[:count]


def fresh_transport(web, **latency_kwargs):
    web.servers.reseed(SEED)
    fetcher = Fetcher(web, failure_seed=SEED)
    inner = SimulatedTransport(fetcher)
    if latency_kwargs:
        return LatencyTransport(inner, **latency_kwargs)
    return inner


def drain(transport, urls, order):
    """Prepare *urls* in order, then await completions in *order*."""
    async def run():
        pendings = [transport.prepare(url) for url in urls]
        results = [None] * len(urls)

        async def one(index):
            results[index] = await transport.wait(pendings[index])

        await asyncio.gather(*[one(index) for index in order])
        return results

    return asyncio.run(run())


class TestSimulatedTransport:
    def test_fetch_delegates_bit_for_bit(self, small_web):
        urls = sample_urls(small_web)
        small_web.servers.reseed(SEED)
        reference = [Fetcher(small_web, failure_seed=SEED).fetch(u) for u in urls]
        small_web.servers.reseed(SEED)
        transport = SimulatedTransport(Fetcher(small_web, failure_seed=SEED))
        via_transport = [transport.fetch(u) for u in urls]
        assert [(r.url, r.status, r.latency_ms) for r in reference] == [
            (r.url, r.status, r.latency_ms) for r in via_transport
        ]
        assert [r.tokens for r in reference] == [r.tokens for r in via_transport]

    def test_prepare_wait_equals_fetch(self, small_web):
        urls = sample_urls(small_web)
        sync_transport = fresh_transport(small_web)
        sync = [sync_transport.fetch(u) for u in urls]
        transport = fresh_transport(small_web)
        in_order = drain(transport, urls, order=range(len(urls)))
        assert [(r.status, r.latency_ms) for r in sync] == [
            (r.status, r.latency_ms) for r in in_order
        ]

    def test_failure_stream_immune_to_completion_interleaving(self, small_web):
        """Same seed => same failure/latency stream, any completion order.

        The ServerPool RNG is one shared sequential generator; because
        draws happen at prepare() time, awaiting the fetches back to
        front (or any shuffle) must yield identical per-URL outcomes and
        leave the generator in the identical end state.
        """
        urls = sample_urls(small_web)
        forward = fresh_transport(small_web)
        results_forward = drain(forward, urls, order=range(len(urls)))
        state_forward = small_web.servers.rng_state()

        backward = fresh_transport(small_web)
        results_backward = drain(backward, urls, order=reversed(range(len(urls))))
        state_backward = small_web.servers.rng_state()

        assert [(r.url, r.status, r.latency_ms) for r in results_forward] == [
            (r.url, r.status, r.latency_ms) for r in results_backward
        ]
        assert state_forward == state_backward
        assert forward.state_snapshot() == backward.state_snapshot()

    def test_snapshot_restore_resumes_stream(self, small_web):
        # The server pool's stream is shared web state checkpointed
        # separately (CheckpointManager.server_rng_state); rewind both,
        # as a crawl resume does.
        urls = sample_urls(small_web, count=30)
        transport = fresh_transport(small_web)
        for url in urls[:10]:
            transport.fetch(url)
        snapshot = transport.state_snapshot()
        pool_state = small_web.servers.rng_state()
        tail_a = [(transport.fetch(u).status, transport.fetch(u).latency_ms) for u in urls[10:20]]
        transport.restore_state(snapshot)
        small_web.servers.restore_rng(pool_state)
        tail_b = [(transport.fetch(u).status, transport.fetch(u).latency_ms) for u in urls[10:20]]
        assert tail_a == tail_b

    def test_order_sensitivity_tracks_failure_simulation(self, small_web):
        assert SimulatedTransport(Fetcher(small_web)).order_sensitive
        assert not SimulatedTransport(
            Fetcher(small_web, simulate_failures=False)
        ).order_sensitive


class TestLatencyTransport:
    # time_scale=0 keeps the tests instant: delays are drawn and recorded
    # but never slept.
    def test_same_seed_same_delays_and_results(self, small_web):
        urls = sample_urls(small_web)
        # fresh_transport reseeds the shared server pool, so each
        # transport must be created *and drained* before the next.
        first = fresh_transport(small_web, mean_latency_ms=5.0, seed=9, time_scale=0.0)
        pending_first = [first.prepare(u) for u in urls]
        second = fresh_transport(small_web, mean_latency_ms=5.0, seed=9, time_scale=0.0)
        pending_second = [second.prepare(u) for u in urls]
        assert [(p.result.status, p.attempts) for p in pending_first] == [
            (p.result.status, p.attempts) for p in pending_second
        ]
        assert first.injected_s == second.injected_s

    def test_jitter_bounds_delay(self, small_web):
        mean_ms, jitter = 8.0, 0.25
        transport = fresh_transport(
            small_web, mean_latency_ms=mean_ms, jitter=jitter, per_server={}
        )
        # Every per-host override is absent, so the global mean applies.
        for url in sample_urls(small_web, count=20):
            pending = transport.prepare(url)
            injected_ms = pending.delay_s * 1000.0
            assert mean_ms * (1 - jitter) <= injected_ms <= mean_ms * (1 + jitter)

    def test_timeouts_exhaust_retries_into_server_error(self, small_web):
        transport = fresh_transport(
            small_web,
            timeout_rate=0.999,
            timeout_ms=10.0,
            max_retries=2,
            time_scale=0.0,
        )
        pending = transport.prepare(sample_urls(small_web)[0])
        assert pending.result.status is FetchStatus.SERVER_ERROR
        assert pending.attempts == 3  # initial try + 2 retries, all timed out
        assert transport.timeouts == 3
        # Each timed-out attempt costs the full timeout budget.
        assert pending.result.latency_ms == pytest.approx(30.0)

    def test_per_server_override_and_pool_profiles(self, small_web):
        urls = sample_urls(small_web)
        host = Fetcher(small_web).fetch(urls[0]).server
        transport = fresh_transport(
            small_web, mean_latency_ms=4.0, jitter=0.0, per_server={host: 40.0}
        )
        assert transport.prepare(urls[0]).delay_s == pytest.approx(0.040)

        small_web.servers.reseed(SEED)
        pooled = LatencyTransport.from_server_pool(
            SimulatedTransport(Fetcher(small_web, failure_seed=SEED)),
            small_web.servers,
            scale=0.5,
            jitter=0.0,
        )
        mean_ms, _ = small_web.servers.latency_profile(host)
        assert pooled.per_server[host] == pytest.approx(mean_ms * 0.5)

    def test_snapshot_restore_resumes_both_streams(self, small_web):
        urls = sample_urls(small_web, count=30)
        transport = fresh_transport(small_web, mean_latency_ms=5.0, time_scale=0.0)
        for url in urls[:10]:
            transport.prepare(url)
        snapshot = transport.state_snapshot()
        pool_state = small_web.servers.rng_state()
        tail_a = [
            (transport.prepare(u).result.status, transport.prepare(u).delay_s)
            for u in urls[10:20]
        ]
        transport.restore_state(snapshot)
        small_web.servers.restore_rng(pool_state)
        tail_b = [
            (transport.prepare(u).result.status, transport.prepare(u).delay_s)
            for u in urls[10:20]
        ]
        assert tail_a == tail_b

    def test_rejects_bad_parameters(self, small_web):
        with pytest.raises(ValueError):
            fresh_transport(small_web, jitter=1.5)
        with pytest.raises(ValueError):
            fresh_transport(small_web, timeout_rate=1.0)
        with pytest.raises(ValueError):
            fresh_transport(small_web, mean_latency_ms=-1.0)


class TestServerPoolProfiles:
    def test_latency_profile_defaults_for_unknown_hosts(self, small_web):
        mean_ms, failure_rate = small_web.servers.latency_profile("nowhere.example")
        assert mean_ms == DEFAULT_MEAN_LATENCY_MS
        assert 0.0 <= failure_rate < 1.0

    def test_latency_profile_reads_registered_profiles(self, small_web):
        name = small_web.servers.names()[0]
        profile = small_web.servers.get(name)
        assert small_web.servers.latency_profile(name) == (
            profile.mean_latency_ms,
            profile.failure_rate,
        )


class TestBuildTransport:
    def test_registry_names(self):
        assert set(TRANSPORTS) == {"simulated", "latency", "http"}

    def test_simulated_default(self, small_web):
        transport = build_transport("simulated", Fetcher(small_web))
        assert isinstance(transport, SimulatedTransport)

    def test_simulated_rejects_options(self, small_web):
        with pytest.raises(ValueError):
            build_transport("simulated", Fetcher(small_web), {"mean_latency_ms": 1.0})

    def test_latency_options_and_pool_derivation(self, small_web):
        transport = build_transport(
            "latency", Fetcher(small_web), {"mean_latency_ms": 3.0, "seed": 2}
        )
        assert isinstance(transport, LatencyTransport)
        assert transport.mean_latency_ms == 3.0
        pooled = build_transport(
            "latency",
            Fetcher(small_web),
            {"per_server_from_pool": True, "per_server_scale": 0.1},
        )
        assert pooled.per_server  # one entry per registered server
        assert len(pooled.per_server) == len(small_web.servers)

    def test_unknown_transport_rejected(self, small_web):
        with pytest.raises(ValueError):
            build_transport("carrier-pigeon", Fetcher(small_web))

    def test_http_transport_is_import_guarded(self):
        try:
            import aiohttp  # noqa: F401
        except ImportError:
            with pytest.raises(TransportUnavailable):
                HttpTransport()
        else:  # pragma: no cover - depends on the environment
            transport = HttpTransport()
            assert not transport.order_sensitive
            assert transport.prepare("http://example.org/").result is None


class TestHtmlParsing:
    def test_parse_html_tokens_and_links(self):
        from repro.webgraph.transport import parse_html

        html = """
        <html><head><style>body { color: red }</style>
        <script>var x = 1;</script></head>
        <body><h1>Cycling Hubs</h1>
        <a href="/local/page">rel</a>
        <a href="https://other.example/abs">abs</a>
        <a href="#fragment-only">skip</a>
        </body></html>
        """
        tokens, links = parse_html(html, base_url="http://example.org/dir/index.html")
        assert "cycling" in tokens and "hubs" in tokens
        assert "var" not in tokens and "color" not in tokens  # script/style stripped
        assert links == [
            "http://example.org/local/page",
            "https://other.example/abs",
        ]
