"""Tests for the synthetic web graph generator and the simulated fetcher.

These verify the structural properties the paper's architecture relies on
(radius-1 and radius-2 topical locality) actually hold in the generated
graph, as well as the mechanics crawlers depend on (seeds, distances,
failures, dead links).
"""

import numpy as np
import pytest

from repro.webgraph.fetch import Fetcher, FetchStatus
from repro.webgraph.graph import SyntheticWebBuilder, WebConfig
from repro.webgraph.urls import normalize_url

GOOD = "recreation/cycling"


@pytest.fixture(scope="module")
def web():
    config = WebConfig(
        seed=5,
        pages_per_topic=40,
        topic_page_overrides={GOOD: 100},
        background_pages=250,
        mean_doc_length=50,
        popular_sites=5,
        link_locality_window=12,
        seed_region_fraction=0.3,
    )
    return SyntheticWebBuilder(config).build()


class TestGraphStructure:
    def test_page_counts_match_config(self, web):
        census = web.topic_census()
        assert census[GOOD] == 100
        assert census["recreation/running"] == 40
        # Background and popular pages both carry the empty topic path.
        assert census[""] == 250 + 5
        assert len(web) == sum(census.values())

    def test_pages_have_text_and_links(self, web):
        for url in list(web.urls())[:50]:
            page = web.page(url)
            assert page.tokens
            assert page.url == normalize_url(page.url)

    def test_radius_1_rule_holds(self, web):
        """Relevant pages cite relevant pages far more often than background pages do."""
        def fraction_to_good(urls):
            same = other = 0
            for url in urls:
                for target in web.out_links(url):
                    if not web.has_page(target):
                        continue
                    if web.topic_of(target) == GOOD:
                        same += 1
                    else:
                        other += 1
            return same / max(same + other, 1)

        cycling_fraction = fraction_to_good(web.pages_of_topic(GOOD))
        background_fraction = fraction_to_good(web.pages_of_topic("", include_descendants=False))
        assert cycling_fraction > 0.35
        assert background_fraction < 0.05
        assert cycling_fraction > 10 * background_fraction

    def test_radius_2_rule_holds(self, web):
        """Given one link to the topic, the chance of a second link is strongly inflated."""
        pages_with_one = 0
        pages_with_two = 0
        baseline_with_any = 0
        all_pages = web.urls()
        for url in all_pages:
            targets = [t for t in web.out_links(url) if web.has_page(t)]
            count = sum(1 for t in targets if web.topic_of(t) == GOOD)
            if count >= 1:
                baseline_with_any += 1
                pages_with_one += 1
                if count >= 2:
                    pages_with_two += 1
        conditional = pages_with_two / max(pages_with_one, 1)
        unconditional = baseline_with_any / len(all_pages)
        assert conditional > 2 * unconditional

    def test_hubs_have_larger_out_degree(self, web):
        hubs = web.hub_pages(GOOD)
        ordinary = [u for u in web.pages_of_topic(GOOD) if not web.page(u).is_hub]
        assert hubs
        mean_hub = np.mean([len(web.out_links(u)) for u in hubs])
        mean_ordinary = np.mean([len(web.out_links(u)) for u in ordinary])
        assert mean_hub > 1.5 * mean_ordinary

    def test_in_links_are_consistent_with_out_links(self, web):
        url = web.pages_of_topic(GOOD)[1]
        for source in web.in_links(url):
            assert normalize_url(url) in [normalize_url(t) for t in web.out_links(source)]

    def test_relevant_pages_includes_descendants(self, web):
        relevant = web.relevant_pages(["recreation"])
        assert set(web.pages_of_topic(GOOD)).issubset(relevant)

    def test_deterministic_for_fixed_seed(self):
        config = WebConfig(seed=9, pages_per_topic=20, background_pages=50, mean_doc_length=40)
        first = SyntheticWebBuilder(config).build()
        second = SyntheticWebBuilder(WebConfig(seed=9, pages_per_topic=20, background_pages=50, mean_doc_length=40)).build()
        assert first.urls() == second.urls()
        sample = first.urls()[17]
        assert first.page(sample).out_links == second.page(sample).out_links


class TestSeedsAndDistances:
    def test_keyword_seeds_are_on_topic_and_in_head_region(self, web):
        seeds = web.keyword_seed_pages(GOOD, count=12)
        assert len(seeds) == 12
        assert all(web.topic_of(u) == GOOD for u in seeds)
        cutoff = max(24, int(100 * web.config.seed_region_fraction))
        assert all(web.page(u).topic_index < cutoff for u in seeds)

    def test_disjoint_seed_sets(self, web):
        first, second = web.disjoint_seed_sets(GOOD, size=10)
        assert len(first) == len(second) == 10
        assert not set(first) & set(second)

    def test_shortest_distances_bfs(self, web):
        seeds = web.keyword_seed_pages(GOOD, count=5)
        distances = web.shortest_distances(seeds)
        assert all(distances[u] == 0 for u in seeds)
        assert max(distances.values()) >= 1

    def test_seed_request_larger_than_topic(self, web):
        seeds = web.keyword_seed_pages("arts/music", count=10_000)
        assert len(seeds) == 40


class TestFetcher:
    def test_fetch_ok_returns_tokens_and_links(self, web):
        fetcher = Fetcher(web, simulate_failures=False)
        url = web.pages_of_topic(GOOD)[0]
        result = fetcher.fetch(url)
        assert result.ok and result.status is FetchStatus.OK
        assert result.tokens and result.server
        assert result.oid == web.page(url).oid
        assert fetcher.stats.successes == 1

    def test_fetch_unknown_url_is_not_found(self, web):
        fetcher = Fetcher(web)
        result = fetcher.fetch("http://nowhere.example.org/missing.html")
        assert result.status is FetchStatus.NOT_FOUND
        assert result.tokens == []
        assert fetcher.stats.not_found == 1

    def test_dead_links_exist_and_return_not_found(self, web):
        fetcher = Fetcher(web, simulate_failures=False)
        dead = [
            target
            for url in web.urls()
            for target in web.out_links(url)
            if not web.has_page(target)
        ]
        assert dead, "the generator should produce some dead links"
        assert fetcher.fetch(dead[0]).status is FetchStatus.NOT_FOUND

    def test_transient_failures_occur_with_failure_simulation(self, web):
        fetcher = Fetcher(web, failure_seed=3, simulate_failures=True)
        statuses = [fetcher.fetch(u).status for u in web.urls()[:400]]
        assert FetchStatus.SERVER_ERROR in statuses
        assert fetcher.stats.attempts == 400
        assert fetcher.stats.total_latency_ms > 0

    def test_fetch_normalizes_url(self, web):
        fetcher = Fetcher(web, simulate_failures=False)
        url = web.pages_of_topic(GOOD)[0]
        shouting = url.replace("http://", "HTTP://")
        assert fetcher.fetch(shouting).ok
