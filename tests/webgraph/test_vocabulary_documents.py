"""Tests for the synthetic vocabulary and the multinomial document generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.webgraph.documents import DocumentGenerator
from repro.webgraph.vocabulary import (
    TermDistribution,
    Vocabulary,
    term_id,
    zipf_probabilities,
)


class TestTermId:
    def test_stable_and_32_bit(self):
        assert term_id("cycling") == term_id("cycling")
        assert 0 <= term_id("cycling") < 2**32
        assert term_id("cycling") != term_id("gardening")

    @given(st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_range_property(self, term):
        assert 0 <= term_id(term) < 2**32


class TestTermDistribution:
    def test_probabilities_normalised(self):
        dist = TermDistribution(np.array(["a", "b"], dtype=object), np.array([2.0, 2.0]))
        assert dist.probabilities.sum() == pytest.approx(1.0)
        assert dist.probability_of("a") == pytest.approx(0.5)
        assert dist.probability_of("zzz") == 0.0

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            TermDistribution(np.array(["a"], dtype=object), np.array([0.0]))

    def test_sampling_respects_support(self):
        dist = TermDistribution(np.array(["x", "y"], dtype=object), np.array([0.9, 0.1]))
        samples = dist.sample(np.random.default_rng(0), 200)
        assert set(samples) <= {"x", "y"}
        assert samples.count("x") > samples.count("y")

    def test_mixture_weights(self):
        a = TermDistribution(np.array(["a"], dtype=object), np.array([1.0]))
        b = TermDistribution(np.array(["b"], dtype=object), np.array([1.0]))
        mixture = TermDistribution.mixture([a, b], [0.75, 0.25])
        assert mixture.probability_of("a") == pytest.approx(0.75)
        with pytest.raises(ValueError):
            TermDistribution.mixture([])
        with pytest.raises(ValueError):
            TermDistribution.mixture([a, b], [1.0])

    def test_top_terms(self):
        dist = TermDistribution(
            np.array(["a", "b", "c"], dtype=object), np.array([0.2, 0.5, 0.3])
        )
        assert dist.top_terms(2) == ["b", "c"]

    def test_zipf_probabilities_decreasing(self):
        probs = zipf_probabilities(20)
        assert probs.sum() == pytest.approx(1.0)
        assert all(probs[i] >= probs[i + 1] for i in range(19))


class TestVocabulary:
    def setup_method(self):
        self.vocab = Vocabulary.build(["rec/cycling", "rec/running"], background_size=50, terms_per_topic=20)

    def test_topic_blocks_are_disjoint_from_background(self):
        cycling_terms = set(self.vocab.topic_terms["rec/cycling"])
        assert cycling_terms.isdisjoint(self.vocab.background_terms)
        assert len(cycling_terms) == 20

    def test_leaf_distribution_mixes_topic_and_background(self):
        dist = self.vocab.leaf_distribution("rec/cycling")
        assert dist.probability_of("rec_cycling_t000") > 0
        assert dist.probability_of(self.vocab.background_terms[0]) > 0
        with pytest.raises(KeyError):
            self.vocab.leaf_distribution("unknown/topic")

    def test_blended_distribution(self):
        blend = self.vocab.blended_distribution({"rec/cycling": 0.5, "rec/running": 0.5})
        assert blend.probability_of("rec_cycling_t000") > 0
        assert blend.probability_of("rec_running_t000") > 0

    def test_all_terms_and_paths(self):
        assert len(self.vocab.all_terms()) == 50 + 40
        assert self.vocab.topic_paths() == ["rec/cycling", "rec/running"]


class TestDocumentGenerator:
    def setup_method(self):
        vocab = Vocabulary.build(["a/b"], background_size=40, terms_per_topic=15)
        self.generator = DocumentGenerator(vocab, mean_length=50, rng=np.random.default_rng(3))

    def test_generated_document_has_topic_terms(self):
        doc = self.generator.generate("a/b")
        assert doc.topic_path == "a/b"
        assert doc.length >= 30
        assert any(t.startswith("a_b_t") for t in doc.tokens)

    def test_fixed_length(self):
        doc = self.generator.generate("a/b", length=77)
        assert doc.length == 77

    def test_background_document_has_no_topic_terms(self):
        doc = self.generator.generate_background()
        assert doc.topic_path == ""
        assert not any(t.startswith("a_b_t") for t in doc.tokens)

    def test_examples_are_independent_draws(self):
        docs = self.generator.generate_examples("a/b", 5)
        assert len(docs) == 5
        assert len({tuple(d.tokens) for d in docs}) > 1

    def test_term_frequencies_sum_to_length(self):
        doc = self.generator.generate("a/b", length=64)
        assert sum(doc.term_frequencies().values()) == 64

    def test_mixture_document_keeps_primary_label(self):
        doc = self.generator.generate_mixture({"a/b": 1.0}, primary_topic="a/b", background_weight=1.0)
        assert doc.topic_path == "a/b"
