"""Cassette layer unit tests: format, strictness, snapshot/rewind.

Engine-level record→replay bit-identity lives in
``tests/core/test_cassette_replay.py``; this file pins the cassette
mechanics themselves.
"""

import json

import pytest

from repro.webgraph.cassette import (
    CASSETTE_FORMAT,
    CASSETTE_VERSION,
    CassetteError,
    CassetteMismatch,
    RecordingTransport,
    ReplayTransport,
    lint_cassette,
    read_header,
    result_from_dict,
    result_to_dict,
    transport_for_config,
)
from repro.webgraph.fetch import Fetcher, FetchResult, FetchStatus
from repro.webgraph.transport import SimulatedTransport

SEED = 5


def make_inner(web):
    web.servers.reseed(SEED)
    return SimulatedTransport(Fetcher(web, failure_seed=SEED))


def sample_urls(web, count=12):
    return sorted(web.pages)[:count]


class TestResultSerialization:
    @pytest.mark.parametrize("status", list(FetchStatus))
    def test_round_trip_every_status(self, status):
        result = FetchResult(
            url="http://h.example/p",
            status=status,
            tokens=["alpha", "beta"],
            out_links=["http://h.example/q"],
            server="h.example",
            latency_ms=123.456789012345678,
            detail="robots" if status is FetchStatus.SKIPPED else "",
        )
        assert result_from_dict(result_to_dict(result)) == result

    def test_floats_survive_json_bit_for_bit(self):
        result = FetchResult(
            url="u", status=FetchStatus.OK, latency_ms=0.1 + 0.2  # 0.30000000000000004
        )
        wire = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(wire).latency_ms == result.latency_ms


class TestFormatValidation:
    def test_fresh_recording_writes_header(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        recorder = RecordingTransport(make_inner(small_web), path, meta={"note": "hi"})
        recorder.close()
        header = read_header(path)
        assert header["format"] == CASSETTE_FORMAT
        assert header["version"] == CASSETTE_VERSION
        assert header["meta"] == {"note": "hi"}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(CassetteError, match="empty"):
            ReplayTransport(str(path))

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(CassetteError, match="not a repro-fetch-cassette"):
            read_header(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"format": CASSETTE_FORMAT, "version": 999}) + "\n")
        with pytest.raises(CassetteError, match="version"):
            ReplayTransport(str(path))

    def test_recorder_refuses_foreign_existing_file(self, small_web, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CassetteError):
            RecordingTransport(make_inner(small_web), str(path))

    def test_duplicate_fetch_key_rejected(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        event = {
            "kind": "fetch",
            "url": "http://h/p",
            "attempt": 1,
            "result": result_to_dict(FetchResult(url="http://h/p", status=FetchStatus.OK)),
        }
        path.write_text(
            json.dumps({"format": CASSETTE_FORMAT, "version": CASSETTE_VERSION}) + "\n"
            + json.dumps(event) + "\n"
            + json.dumps(event) + "\n"
        )
        with pytest.raises(CassetteError, match="duplicate"):
            ReplayTransport(str(path))
        with pytest.raises(CassetteError, match="duplicate"):
            lint_cassette(str(path))


class TestRecordThenReplay:
    def test_round_trip_results_identical(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)
        recorder = RecordingTransport(make_inner(small_web), path)
        originals = [recorder.fetch(url) for url in urls]
        # A second attempt of the first URL advances its attempt counter.
        second = recorder.fetch(urls[0])
        recorder.close()

        replay = ReplayTransport(path)
        replayed = [replay.fetch(url) for url in urls]
        assert replayed == originals  # dataclass equality: floats bit-identical
        assert replay.fetch(urls[0]) == second
        replay.assert_exhausted()

    def test_prepare_wait_path_records_and_replays(self, small_web, tmp_path):
        import asyncio

        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)
        recorder = RecordingTransport(make_inner(small_web), path)

        async def run(transport):
            pendings = [transport.prepare(url) for url in urls]
            return [await transport.wait(p) for p in pendings]

        originals = asyncio.run(run(recorder))
        recorder.close()
        replay = ReplayTransport(path)
        assert asyncio.run(run(replay)) == originals
        replay.assert_exhausted()

    def test_recording_is_order_sensitive(self, small_web, tmp_path):
        recorder = RecordingTransport(make_inner(small_web), str(tmp_path / "c.jsonl"))
        assert recorder.order_sensitive
        recorder.close()


class TestStrictness:
    def test_strict_miss_raises(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        recorder = RecordingTransport(make_inner(small_web), path)
        recorder.fetch(sample_urls(small_web)[0])
        recorder.close()
        replay = ReplayTransport(path, strict=True)
        with pytest.raises(CassetteMismatch, match="diverged"):
            replay.fetch("http://never-recorded.example/")

    def test_strict_second_attempt_miss_raises(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        url = sample_urls(small_web)[0]
        recorder = RecordingTransport(make_inner(small_web), path)
        recorder.fetch(url)
        recorder.close()
        replay = ReplayTransport(path)
        replay.fetch(url)
        with pytest.raises(CassetteMismatch, match="attempt 2"):
            replay.fetch(url)

    def test_non_strict_miss_degrades_to_not_found(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        recorder = RecordingTransport(make_inner(small_web), path)
        recorder.fetch(sample_urls(small_web)[0])
        recorder.close()
        replay = ReplayTransport(path, strict=False)
        result = replay.fetch("http://never-recorded.example/")
        assert result.status is FetchStatus.NOT_FOUND
        assert result.detail == "cassette-miss"

    def test_leftover_reported_and_loud(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)[:3]
        recorder = RecordingTransport(make_inner(small_web), path)
        for url in urls:
            recorder.fetch(url)
        recorder.close()
        replay = ReplayTransport(path)
        replay.fetch(urls[0])
        assert replay.leftover() == [(urls[1], 1), (urls[2], 1)]
        with pytest.raises(CassetteMismatch, match="2 unconsumed"):
            replay.assert_exhausted()


class TestSnapshotRewind:
    def test_recorder_restore_truncates_speculative_events(self, small_web, tmp_path):
        import os

        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)
        recorder = RecordingTransport(make_inner(small_web), path)
        committed = [recorder.fetch(url) for url in urls[:4]]
        snapshot = recorder.state_snapshot()
        # The engine's speculation rewind also restores the server pool's
        # failure/latency RNG alongside the transport snapshot.
        server_rng = small_web.servers.rng_state()
        size_at_snapshot = os.path.getsize(path)
        assert snapshot["offset"] == size_at_snapshot
        # Speculative work past the snapshot...
        speculative = [recorder.fetch(url) for url in urls[4:8]]
        assert os.path.getsize(path) > size_at_snapshot
        # ...rewound: the file truncates back and the draws replay.
        recorder.restore_state(snapshot)
        small_web.servers.restore_rng(server_rng)
        assert os.path.getsize(path) == size_at_snapshot
        replayed_speculation = [recorder.fetch(url) for url in urls[4:8]]
        assert replayed_speculation == speculative
        recorder.close()

        replay = ReplayTransport(path)
        for url, original in zip(urls[:8], committed + speculative):
            assert replay.fetch(url) == original
        replay.assert_exhausted()

    def test_replay_snapshot_restores_served_counters(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)[:6]
        recorder = RecordingTransport(make_inner(small_web), path)
        originals = [recorder.fetch(url) for url in urls]
        recorder.close()
        replay = ReplayTransport(path)
        for url in urls[:3]:
            replay.fetch(url)
        snapshot = replay.state_snapshot()
        tail_first = [replay.fetch(url) for url in urls[3:]]
        replay.restore_state(snapshot)
        assert replay.stats.attempts == 3
        tail_second = [replay.fetch(url) for url in urls[3:]]
        assert tail_second == tail_first == originals[3:]

    def test_resume_append_after_reopen(self, small_web, tmp_path):
        # Simulates kill/resume while recording: a new process reopens
        # the half-written cassette, restores to the checkpoint offset,
        # and continues appending.
        path = str(tmp_path / "c.jsonl")
        urls = sample_urls(small_web)
        recorder = RecordingTransport(make_inner(small_web), path)
        first_half = [recorder.fetch(url) for url in urls[:4]]
        snapshot = recorder.state_snapshot()
        server_rng = small_web.servers.rng_state()  # checkpointed alongside
        recorder.fetch(urls[4])  # lost to the "crash"
        recorder.close()

        resumed = RecordingTransport(SimulatedTransport(Fetcher(small_web)), path)
        resumed.restore_state(snapshot)
        small_web.servers.restore_rng(server_rng)
        second_half = [resumed.fetch(url) for url in urls[4:8]]
        resumed.close()

        replay = ReplayTransport(path)
        for url, original in zip(urls[:8], first_half + second_half):
            assert replay.fetch(url) == original
        replay.assert_exhausted()

    def test_rerecord_continues_attempt_numbering(self, small_web, tmp_path):
        # An explicit record re-run over an existing cassette continues
        # each URL's attempt counters where the file left off — a fresh
        # counter would append duplicate (url, attempt) keys that replay
        # and lint_cassette reject.
        path = str(tmp_path / "c.jsonl")
        url = sample_urls(small_web)[0]
        first = RecordingTransport(make_inner(small_web), path)
        original = first.fetch(url)
        first.close()
        second = RecordingTransport(make_inner(small_web), path)
        rerecorded = second.fetch(url)
        second.close()
        assert lint_cassette(path)["events"]["fetch"] == 2  # distinct keys
        replay = ReplayTransport(path)
        assert replay.fetch(url) == original       # attempt 1
        assert replay.fetch(url) == rerecorded     # attempt 2
        replay.assert_exhausted()


class TestTransportForConfig:
    def _config(self, **overrides):
        from repro import CrawlerConfig

        return CrawlerConfig(**overrides)

    def test_no_cassette_is_plain_build(self, small_web):
        config = self._config()
        transport = transport_for_config(config, Fetcher(small_web))
        assert isinstance(transport, SimulatedTransport)

    def test_auto_resolves_record_then_replay(self, small_web, tmp_path):
        path = str(tmp_path / "c.jsonl")
        config = self._config(cassette_path=path, cassette_mode="auto")
        transport = transport_for_config(config, Fetcher(small_web))
        assert isinstance(transport, RecordingTransport)
        assert config.cassette_mode == "record"  # persisted for checkpoints
        transport.fetch(sorted(small_web.pages)[0])
        transport.close()

        config2 = self._config(cassette_path=path, cassette_mode="auto")
        transport2 = transport_for_config(config2, Fetcher(small_web))
        assert isinstance(transport2, ReplayTransport)
        assert config2.cassette_mode == "replay"

    def test_explicit_record_appends_despite_existing_file(self, small_web, tmp_path):
        # A checkpointed recording crawl resumes in record mode even
        # though the half-written file exists ("auto" must not flip it).
        path = str(tmp_path / "c.jsonl")
        config = self._config(cassette_path=path, cassette_mode="record")
        transport = transport_for_config(config, Fetcher(small_web))
        transport.fetch(sorted(small_web.pages)[0])
        transport.close()
        config2 = self._config(cassette_path=path, cassette_mode="record")
        transport2 = transport_for_config(config2, Fetcher(small_web))
        assert isinstance(transport2, RecordingTransport)
        transport2.close()

    def test_replay_never_builds_inner_transport(self, small_web, tmp_path, monkeypatch):
        path = str(tmp_path / "c.jsonl")
        config = self._config(cassette_path=path)
        transport = transport_for_config(config, Fetcher(small_web))
        transport.fetch(sorted(small_web.pages)[0])
        transport.close()

        import repro.webgraph.transport as transport_module

        def boom(*args, **kwargs):
            raise AssertionError("replay must not build a transport")

        monkeypatch.setattr(transport_module, "build_transport", boom)
        config2 = self._config(cassette_path=path, transport="http")
        replay = transport_for_config(config2, Fetcher(small_web))
        assert isinstance(replay, ReplayTransport)

    def test_record_http_with_prefetch_refused(self, small_web, tmp_path):
        config = self._config(
            cassette_path=str(tmp_path / "c.jsonl"),
            cassette_mode="record",
            transport="http",
            prefetch=True,
            fetch_mode="async",
        )
        with pytest.raises(ValueError, match="prefetch"):
            transport_for_config(config, Fetcher(small_web))

    def test_unknown_mode_rejected(self, small_web, tmp_path):
        config = self._config(cassette_path=str(tmp_path / "c.jsonl"))
        config.cassette_mode = "rewind"
        with pytest.raises(ValueError, match="cassette_mode"):
            transport_for_config(config, Fetcher(small_web))


class TestEventPassthrough:
    def test_http_observability_events_land_in_cassette(self, tmp_path):
        from repro.webgraph.transport import HttpTransport
        from tests.webgraph.fixture_site import FixtureSite

        path = str(tmp_path / "c.jsonl")
        with FixtureSite() as site:
            recorder = RecordingTransport(
                HttpTransport(max_retries=0, timeout_s=10.0, max_redirects=3), path
            )
            page_url = site.url("/c0.html")
            recorder.fetch(page_url)                      # robots fetch event
            recorder.fetch(site.url("/redirect/hop1"))    # redirect events
            recorder.close()
        summary = lint_cassette(path)
        assert summary["events"]["fetch"] == 2
        assert summary["events"]["robots"] == 1
        assert summary["events"]["redirect"] == 2
        # Replay (server long gone) skips observability events and
        # serves the recorded fetches.
        replay = ReplayTransport(path)
        result = replay.fetch(page_url)
        assert result.status is FetchStatus.OK
