"""Tests for topic trees and URL handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.webgraph.topics import (
    DEFAULT_TOPIC_SPEC,
    build_tree,
    default_topic_tree,
    leaf_paths,
    sibling_paths,
)
from repro.webgraph.urls import (
    SyntheticUrl,
    host_of,
    make_url,
    normalize_url,
    server_sid,
    url_oid,
)


class TestTopicTree:
    def test_default_tree_structure(self):
        root = default_topic_tree()
        assert root.name == "root"
        assert {c.name for c in root.children} == set(DEFAULT_TOPIC_SPEC)
        assert "recreation/cycling" in leaf_paths(root)

    def test_find_and_path(self):
        root = default_topic_tree()
        node = root.find("business/investment/mutual_funds")
        assert node.path == "business/investment/mutual_funds"
        assert node.is_leaf
        assert root.find("") is root
        with pytest.raises(KeyError):
            root.find("no/such/topic")

    def test_ancestors_and_depth(self):
        root = default_topic_tree()
        node = root.find("health/first_aid")
        assert [a.name for a in node.ancestors()] == ["health", "root"]
        assert node.depth() == 2
        assert root.depth() == 0

    def test_walk_covers_all_nodes(self):
        root = build_tree({"a": {"b": {}, "c": {}}, "d": {}})
        names = [n.name for n in root.walk()]
        assert names == ["root", "a", "b", "c", "d"]

    def test_sibling_paths(self):
        root = default_topic_tree()
        siblings = sibling_paths(root, "recreation/cycling")
        assert "recreation/running" in siblings
        assert "recreation/cycling" not in siblings
        assert sibling_paths(root, "") == []

    def test_add_child(self):
        root = build_tree({})
        child = root.add_child("new")
        assert child.parent is root
        assert child.path == "new"


class TestUrls:
    def test_normalize_is_idempotent_and_canonical(self):
        url = "HTTP://Example.COM:80//a//b.html#frag"
        normalized = normalize_url(url)
        assert normalized == "http://example.com/a/b.html"
        assert normalize_url(normalized) == normalized

    def test_default_path(self):
        assert normalize_url("http://example.com") == "http://example.com/"

    def test_oid_and_sid_stability(self):
        assert url_oid("http://a.com/x") == url_oid("HTTP://A.com/x")
        assert url_oid("http://a.com/x") != url_oid("http://a.com/y")
        assert server_sid("http://a.com/x") == server_sid("a.com")
        assert 0 <= url_oid("http://a.com/") < 2**64

    def test_same_server_different_pages_share_sid(self):
        first = SyntheticUrl("cycling0.example.org", "a/1.html")
        second = SyntheticUrl("cycling0.example.org", "a/2.html")
        assert first.sid == second.sid
        assert first.oid != second.oid

    def test_host_of_and_make_url(self):
        url = make_url("srv.example.org", 3, "cycling")
        assert str(url) == "http://srv.example.org/cycling/3.html"
        assert host_of(str(url)) == "srv.example.org"

    @given(
        host=st.from_regex(r"[a-z]{1,10}\.example\.org", fullmatch=True),
        path=st.from_regex(r"[a-z0-9/]{0,20}", fullmatch=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_normalization_idempotent_property(self, host, path):
        url = f"http://{host}/{path}"
        assert normalize_url(normalize_url(url)) == normalize_url(url)

    def test_fast_path_agrees_with_full_parse(self):
        """The already-canonical fast path must match urlsplit exactly."""
        from urllib.parse import urlsplit, urlunsplit

        def full_parse(url):
            parts = urlsplit(url.strip())
            scheme = (parts.scheme or "http").lower()
            netloc = parts.netloc.lower()
            if netloc.endswith(":80") and scheme == "http":
                netloc = netloc[: -len(":80")]
            path = parts.path or "/"
            while "//" in path:
                path = path.replace("//", "/")
            return urlunsplit((scheme, netloc, path, parts.query, ""))

        cases = [
            "http://a.example.com/page/1.html",
            "http://host/", "http://host", "HTTP://Host/Path",
            "http://host:80/x", "http://host:8080/x",
            "http://host/a//b", "http://host/a?q=1", "http://host/a#frag",
            " http://host/x ", "https://host/x", "http://user@host/x",
            "http://host/x%20y", "http://host/tr ailing",
            # urlsplit strips embedded tab/CR/LF; the fast path must defer.
            "http://a.com/x\ty", "http://a.com/x\ny", "http://a.com/x\ry",
            "http://a.com\t/x",
        ]
        for url in cases:
            assert normalize_url(url) == full_parse(url), url
