"""HttpTransport hardening tests against the local fixture site.

Every test talks to a real ``ThreadingHTTPServer`` on 127.0.0.1 through
the production fetcher — no mocks of our own code, zero external
network.  The aiohttp backend runs the same suite when the optional
dependency is installed (the CI ``http`` job); the stdlib backend runs
everywhere.
"""

import asyncio

import pytest

from repro.webgraph.fetch import FetchStatus
from repro.webgraph.transport import HttpTransport
from tests.webgraph.fixture_site import FixtureSite

try:
    import aiohttp  # noqa: F401

    HAVE_AIOHTTP = True
except ImportError:
    HAVE_AIOHTTP = False

BACKENDS = [
    "stdlib",
    pytest.param(
        "aiohttp",
        marks=pytest.mark.skipif(not HAVE_AIOHTTP, reason="aiohttp not installed"),
    ),
]


@pytest.fixture(scope="module")
def site():
    with FixtureSite() as fixture:
        yield fixture


def make_transport(**kwargs):
    kwargs.setdefault("timeout_s", 10.0)
    kwargs.setdefault("max_retries", 1)
    kwargs.setdefault("retry_backoff_s", 0.01)
    kwargs.setdefault("max_redirects", 3)
    kwargs.setdefault("max_content_bytes", 4096)
    return HttpTransport(**kwargs)


@pytest.fixture()
def transport():
    fetcher = make_transport()
    yield fetcher
    fetcher.close()


class TestRobots:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_disallow_and_allow_precedence(self, site, backend):
        transport = make_transport(backend=backend)
        try:
            secret = transport.fetch(site.url("/private/secret.html"))
            assert secret.status is FetchStatus.SKIPPED
            assert secret.detail == "robots"
            assert site.request_count("/private/secret.html") == 0  # never touched
            allowed = transport.fetch(site.url("/private/allowed.html"))
            assert allowed.status is FetchStatus.OK
            assert "permitted" in allowed.tokens
        finally:
            transport.close()

    def test_robots_fetched_once_within_ttl(self, site, transport):
        transport.fetch(site.url("/c0.html"))
        transport.fetch(site.url("/c1.html"))
        transport.fetch(site.url("/c2.html"))
        assert transport.robots_fetches == 1

    def test_robots_cache_ttl_expiry(self, site):
        clock = [1000.0]
        transport = make_transport(robots_ttl_s=60.0, clock=lambda: clock[0])
        try:
            before = site.request_count("/robots.txt")
            transport.fetch(site.url("/c0.html"))
            clock[0] += 30.0  # inside the TTL: cached verdict reused
            transport.fetch(site.url("/c1.html"))
            assert site.request_count("/robots.txt") == before + 1
            clock[0] += 61.0  # past the TTL: re-fetched
            transport.fetch(site.url("/c2.html"))
            assert site.request_count("/robots.txt") == before + 2
            assert transport.robots_fetches == 2
        finally:
            transport.close()

    def test_robots_ttl_expiry_across_event_loops(self, site):
        # The engine's non-prefetch async mode runs one event loop per
        # round; a TTL re-fetch on a later round must not re-acquire a
        # per-host robots lock bound to an earlier round's loop.  The
        # lock binds on its *contended* path, so each round issues two
        # concurrent same-host fetches (the engine's normal shape).
        clock = [1000.0]
        transport = make_transport(robots_ttl_s=60.0, clock=lambda: clock[0])

        async def fetch_round(*urls):
            return await asyncio.gather(
                *(transport.wait(transport.prepare(url)) for url in urls)
            )

        try:
            first = asyncio.run(fetch_round(site.url("/c0.html"), site.url("/c1.html")))
            assert all(r.status is FetchStatus.OK for r in first)
            clock[0] += 61.0  # past the TTL: round B's loop re-fetches robots
            second = asyncio.run(fetch_round(site.url("/c2.html"), site.url("/c3.html")))
            assert all(r.status is FetchStatus.OK for r in second)
            assert transport.robots_fetches == 2
        finally:
            transport.close()

    def test_honor_robots_off_skips_the_fetch(self, site):
        transport = make_transport(honor_robots=False)
        try:
            before = site.request_count("/robots.txt")
            result = transport.fetch(site.url("/private/secret.html"))
            assert result.status is FetchStatus.OK
            assert site.request_count("/robots.txt") == before
        finally:
            transport.close()

    def test_missing_robots_allows_everything(self):
        # A site without /robots.txt (404) imposes no restrictions.
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
        import threading

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def do_GET(self):
                if self.path == "/page.html":
                    body = b"<html>open access</html>"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/html")
                else:
                    body = b""
                    self.send_response(404)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        transport = make_transport()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}/page.html"
            result = transport.fetch(url)
            assert result.status is FetchStatus.OK
            assert "access" in result.tokens
        finally:
            transport.close()
            server.shutdown()
            server.server_close()


class TestRedirects:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chain_followed_to_target(self, site, backend):
        transport = make_transport(backend=backend)
        try:
            result = transport.fetch(site.url("/redirect/hop1"))
            assert result.status is FetchStatus.OK
            assert "destination" in result.tokens
            # The result keeps the *requested* URL: frontier identity is
            # stable even when the content came from the chain's end.
            assert result.url == site.url("/redirect/hop1")
            assert transport.redirects_followed == 2
        finally:
            transport.close()

    def test_hop_cap_refused(self, site, transport):
        result = transport.fetch(site.url("/redirect/deep0"))
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "redirect-cap"
        # deep3 was the last hop allowed (cap 3); deep4 is never requested.
        assert site.request_count("/redirect/deep3") >= 1
        assert site.request_count("/redirect/deep4") == 0

    def test_loop_refused(self, site, transport):
        result = transport.fetch(site.url("/loop/a"))
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "redirect-loop"

    def test_redirect_into_robots_disallowed_refused(self, site, transport):
        # robots rules apply to every hop's target, not just the
        # originally requested URL: the disallowed page is never touched.
        before = site.request_count("/private/secret.html")
        result = transport.fetch(site.url("/redirect/private"))
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "robots"
        assert site.request_count("/private/secret.html") == before


class TestContentGates:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_content_type_gate(self, site, backend):
        transport = make_transport(backend=backend)
        try:
            result = transport.fetch(site.url("/binary.png"))
            assert result.status is FetchStatus.SKIPPED
            assert result.detail == "content-type"
        finally:
            transport.close()

    def test_size_gate(self, site, transport):
        result = transport.fetch(site.url("/big.html"))
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "too-large"

    def test_allowed_types_configurable(self, site):
        transport = make_transport(allowed_content_types=("image/png",))
        try:
            result = transport.fetch(site.url("/binary.png"))
            # PNG bytes hold no [a-z]+ words worth tokenising, but the
            # gate passed: the fetch is OK, not SKIPPED.
            assert result.status is FetchStatus.OK
        finally:
            transport.close()


class TestStatusesAndRetries:
    def test_404_and_410_are_not_found(self, site, transport):
        missing = transport.fetch(site.url("/missing.html"))
        assert missing.status is FetchStatus.NOT_FOUND
        assert missing.detail == "http-404"
        gone = transport.fetch(site.url("/gone.html"))
        assert gone.status is FetchStatus.NOT_FOUND
        assert gone.detail == "http-410"

    def test_other_4xx_is_permanent_skip(self, site, transport):
        result = transport.fetch(site.url("/teapot.html"))
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "http-418"

    def test_5xx_retried_then_succeeds(self, site, transport):
        result = transport.fetch(site.url("/flaky.html"))
        assert result.status is FetchStatus.OK
        assert "recovered" in result.tokens
        assert site.request_count("/flaky.html") == 2  # 500 then 200

    def test_5xx_exhausts_retries(self, site, transport):
        before = site.request_count("/error.html")
        result = transport.fetch(site.url("/error.html"))
        assert result.status is FetchStatus.SERVER_ERROR
        assert result.detail == "http-500"
        assert site.request_count("/error.html") == before + 2  # 1 + max_retries

    def test_connection_refused_is_server_error(self):
        transport = make_transport(timeout_s=2.0, max_retries=0, honor_robots=False)
        try:
            # Port 9 (discard) on localhost: nothing listens there.
            result = transport.fetch("http://127.0.0.1:9/nope.html")
            assert result.status is FetchStatus.SERVER_ERROR
            assert result.detail == "network"
        finally:
            transport.close()

    def test_non_http_scheme_skipped_without_io(self, transport):
        result = transport.fetch("ftp://example.org/file")
        assert result.status is FetchStatus.SKIPPED
        assert result.detail == "scheme"


class TestDeterminism:
    def test_backoff_draws_happen_in_prepare_in_checkout_order(self):
        a = make_transport(seed=42, max_retries=3)
        b = make_transport(seed=42, max_retries=3)
        try:
            urls = [f"http://example.org/p{i}" for i in range(6)]
            draws_a = [a.prepare(url).backoffs for url in urls]
            draws_b = [b.prepare(url).backoffs for url in urls]
            assert draws_a == draws_b  # same seed, same checkout order
            assert all(len(draws) == 3 for draws in draws_a)
            # Exponential base doubling shapes each pending's sequence.
            for draws in draws_a:
                assert draws[0] < draws[1] < draws[2]
        finally:
            a.close()
            b.close()

    def test_rng_position_survives_snapshot_restore(self):
        a = make_transport(seed=9, max_retries=2)
        try:
            a.prepare("http://example.org/one")
            snapshot = a.state_snapshot()
            first = a.prepare("http://example.org/two").backoffs
            a.restore_state(snapshot)
            second = a.prepare("http://example.org/two").backoffs
            assert first == second
        finally:
            a.close()

    def test_stats_round_trip(self, site, transport):
        transport.fetch(site.url("/c0.html"))
        transport.fetch(site.url("/missing.html"))
        transport.fetch(site.url("/binary.png"))
        snapshot = transport.state_snapshot()
        assert snapshot["stats"]["attempts"] == 3
        assert snapshot["stats"]["successes"] == 1
        assert snapshot["stats"]["not_found"] == 1
        assert snapshot["stats"]["skipped"] == 1
        fresh = make_transport()
        try:
            fresh.restore_state(snapshot)
            assert fresh.stats.attempts == 3
        finally:
            fresh.close()


class TestPoliteness:
    def test_per_host_delay_spaces_requests(self, monkeypatch):
        clock = [100.0]
        transport = make_transport(per_host_delay_s=0.5, clock=lambda: clock[0])
        sleeps = []

        async def fake_sleep(seconds):
            sleeps.append(seconds)

        async def run():
            monkeypatch.setattr(asyncio, "sleep", fake_sleep)
            await transport._politeness_delay("h.example")
            await transport._politeness_delay("h.example")
            await transport._politeness_delay("h.example")
            await transport._politeness_delay("other.example")

        try:
            asyncio.run(run())
            # First request to each host goes straight through; the next
            # two to the same host wait 0.5s and 1.0s behind it.
            assert sleeps == [pytest.approx(0.5), pytest.approx(1.0)]
        finally:
            transport.close()

    def test_zero_delay_is_noop(self, transport):
        async def run():
            await transport._politeness_delay("h.example")

        asyncio.run(run())
        assert transport._next_request_at == {}


class TestAsyncPipelineShape:
    def test_prepare_wait_roundtrip(self, site):
        transport = make_transport()
        try:
            async def run():
                pendings = [
                    transport.prepare(site.url("/c0.html")),
                    transport.prepare(site.url("/c1.html")),
                    transport.prepare(site.url("/missing.html")),
                ]
                return await asyncio.gather(*[transport.wait(p) for p in pendings])

            results = asyncio.run(run())
            assert [r.status for r in results] == [
                FetchStatus.OK,
                FetchStatus.OK,
                FetchStatus.NOT_FOUND,
            ]
            assert results[0].server.startswith("127.0.0.1")
        finally:
            transport.close()
