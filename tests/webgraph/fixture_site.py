"""A deterministic local HTTP fixture site + cassette tooling.

A stdlib ``ThreadingHTTPServer`` serving a small, fully deterministic
web site on 127.0.0.1 — no external network, ever.  The site exercises
every hardening path of :class:`repro.webgraph.transport.HttpTransport`:

* ``/robots.txt`` with an Allow-before-Disallow precedence pair over
  ``/private/``;
* a redirect hop chain (``/redirect/hop1 → hop2 → /target.html``), a
  too-deep chain (``/redirect/deep0 → … → deep4``), a 2-cycle
  (``/loop/a ↔ /loop/b``), and a redirect into the robots-disallowed
  subtree (``/redirect/private → /private/secret.html``);
* content gates: ``/binary.png`` (image/png) and ``/big.html``
  (oversized body);
* failure shapes: ``/missing.html`` (404), ``/gone.html`` (410),
  ``/teapot.html`` (418), ``/error.html`` (always 500), and
  ``/flaky.html`` (500 on its first request, 200 after — the
  retry-success path);
* 14 ordinary token-bearing content pages linked into a small graph.

Run as a script it is the cassette workbench::

    # regenerate the committed corpus (fixed port so URLs are stable)
    PYTHONPATH=src python tests/webgraph/fixture_site.py \
        --record tests/data/cassettes/fixture_site.jsonl --port 8999

    # CI schema lint
    PYTHONPATH=src python tests/webgraph/fixture_site.py \
        --lint tests/data/cassettes/fixture_site.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

#: Deterministic vocabulary of the content pages (cycling-flavoured so
#: the focused crawler's classifier has real signal to rank with).
WORDS = (
    "cycling", "bicycle", "race", "tour", "wheel", "pedal",
    "road", "mountain", "gear", "sprint", "climb", "rider",
)

CONTENT_PAGES = 12
#: OK-fetchable pages: index + c0..c11 + target + allowed + flaky.
FETCHABLE_PAGES = CONTENT_PAGES + 4

ROBOTS_TXT = """User-agent: *
Allow: /private/allowed.html
Disallow: /private/
"""


def page_tokens(index: int) -> list:
    """The deterministic token body of content page *index*."""
    return [WORDS[(index * 7 + j) % len(WORDS)] for j in range(30)] + [f"page{index}"]


def _html(title: str, tokens, links) -> bytes:
    anchors = "".join(f'<a href="{href}">{href}</a> ' for href in links)
    body = " ".join(tokens)
    return f"<html><head><title>{title}</title></head><body><h1>{title}</h1><p>{body}</p>{anchors}</body></html>".encode()


def _content_page(index: int) -> bytes:
    links = [
        f"/c{(index + 1) % CONTENT_PAGES}.html",
        f"/c{(index + 5) % CONTENT_PAGES}.html",
        "/index.html",
    ]
    return _html(f"content {index}", page_tokens(index), links)


INDEX_LINKS = (
    ["/c0.html", "/c1.html", "/c2.html", "/c3.html", "/c4.html", "/c5.html"]
    + [
        "/redirect/hop1",
        "/redirect/deep0",
        "/loop/a",
        "/binary.png",
        "/big.html",
        "/private/secret.html",
        "/private/allowed.html",
        "/missing.html",
        "/gone.html",
        "/teapot.html",
        "/error.html",
        "/flaky.html",
    ]
)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # quiet
        pass

    def _send(self, status: int, body: bytes = b"", content_type: str = "text/html", location: str = "") -> None:
        self.send_response(status)
        if location:
            self.send_header("Location", location)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: C901 - a route table
        path = self.path.split("?", 1)[0]
        self.server.count(path)
        if path == "/robots.txt":
            return self._send(200, ROBOTS_TXT.encode(), "text/plain")
        if path == "/index.html" or path == "/":
            return self._send(200, _html("fixture index", ["cycling", "directory", "fixture"], INDEX_LINKS))
        if path.startswith("/c") and path.endswith(".html"):
            try:
                index = int(path[2:-5])
            except ValueError:
                return self._send(404)
            if 0 <= index < CONTENT_PAGES:
                return self._send(200, _content_page(index))
            return self._send(404)
        if path == "/redirect/hop1":
            return self._send(302, location="/redirect/hop2")
        if path == "/redirect/hop2":
            return self._send(302, location="/target.html")
        if path.startswith("/redirect/deep"):
            try:
                depth = int(path[len("/redirect/deep"):])
            except ValueError:
                return self._send(404)
            if depth >= 6:
                return self._send(200, _html("deep end", ["unreachable"], []))
            return self._send(302, location=f"/redirect/deep{depth + 1}")
        if path == "/loop/a":
            return self._send(302, location="/loop/b")
        if path == "/loop/b":
            return self._send(302, location="/loop/a")
        if path == "/redirect/private":
            return self._send(302, location="/private/secret.html")
        if path == "/target.html":
            return self._send(200, _html("target", ["cycling", "target", "destination"], ["/index.html"]))
        if path == "/binary.png":
            return self._send(200, b"\x89PNG\r\n\x1a\n" + b"\x00" * 64, "image/png")
        if path == "/big.html":
            return self._send(200, _html("big", ["huge"] * 4000, []))
        if path == "/private/secret.html":
            return self._send(200, _html("secret", ["hidden"], []))
        if path == "/private/allowed.html":
            return self._send(200, _html("allowed", ["cycling", "permitted", "exception"], ["/index.html"]))
        if path == "/missing.html":
            return self._send(404, b"not here", "text/plain")
        if path == "/gone.html":
            return self._send(410, b"gone", "text/plain")
        if path == "/teapot.html":
            return self._send(418, b"teapot", "text/plain")
        if path == "/error.html":
            return self._send(500, b"boom", "text/plain")
        if path == "/flaky.html":
            if self.server.counts[path] == 1:
                return self._send(500, b"first hit fails", "text/plain")
            return self._send(200, _html("flaky", ["cycling", "recovered", "retry"], ["/index.html"]))
        return self._send(404)


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address):
        super().__init__(address, _Handler)
        self.counts = {}
        self._counts_lock = threading.Lock()

    def count(self, path: str) -> None:
        with self._counts_lock:
            self.counts[path] = self.counts.get(path, 0) + 1


class FixtureSite:
    """The fixture server as a context manager with request counters."""

    def __init__(self, port: int = 0) -> None:
        self._server = _Server(("127.0.0.1", port))
        self._thread = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def url(self, path: str) -> str:
        return f"{self.base_url}{path}"

    def request_count(self, path: str) -> int:
        return self._server.counts.get(path, 0)

    def start(self) -> "FixtureSite":
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FixtureSite":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# -- crawl-over-the-fixture-site scaffolding --------------------------------

#: The committed replay corpus (regenerate with ``--record ... --port 8999``).
COMMITTED_CASSETTE = (
    Path(__file__).resolve().parents[2] / "tests" / "data" / "cassettes" / "fixture_site.jsonl"
)

#: Page budget of the standard fixture crawl (leaves slack under the
#: site's FETCHABLE_PAGES so the budget, not exhaustion, ends the crawl).
FIXTURE_MAX_PAGES = 14

#: HttpTransport options of the standard fixture crawl: tight timeouts,
#: a small body cap (gates /big.html), and a 3-hop redirect cap (refuses
#: the /redirect/deep chain while allowing hop1→hop2→target).
FIXTURE_TRANSPORT_OPTIONS = {
    "timeout_s": 10.0,
    "max_retries": 1,
    "retry_backoff_s": 0.01,
    "retry_jitter": 0.25,
    "max_content_bytes": 4096,
    "max_redirects": 3,
    "robots_ttl_s": 3600.0,
    "max_links": 64,
    "seed": 7,
}


def build_fixture_system(web=None):
    """The FocusSystem every fixture crawl (record or replay) runs under.

    Identical construction in the recording CLI and the replay tests is
    what makes a committed cassette replayable: same web seed, same
    taxonomy, same trained classifier, so the crawler requests the same
    ``(url, attempt)`` sequence the cassette holds.  Tests pass the
    session-scoped ``small_web`` fixture; the CLI builds the identical
    web from the same seeded config.
    """
    from repro import FocusConfig, FocusSystem
    from repro.webgraph.graph import SyntheticWebBuilder
    from tests.conftest import GOOD_TOPIC, small_web_config

    if web is None:
        web = SyntheticWebBuilder(small_web_config()).build()
    config = FocusConfig(good_topics=(GOOD_TOPIC,), examples_per_leaf=12, seed_count=8)
    system = FocusSystem.from_web(web, (GOOD_TOPIC,), config)
    system.train()
    return system


def fixture_crawler_config(
    cassette_path: str,
    cassette_mode: str = "auto",
    engine: str = "serial",
    batch_size: int = 1,
    fetch_mode: str = "auto",
    max_pages: int = FIXTURE_MAX_PAGES,
    **overrides,
):
    """The standard CrawlerConfig of a fixture-site cassette crawl.

    ``prefetch`` is pinned off: recording an http crawl is incompatible
    with speculative prefetch (and the ``REPRO_PREFETCH=1`` CI leg would
    otherwise flip it on through the field default).
    """
    from repro import CrawlerConfig

    return CrawlerConfig(
        max_pages=max_pages,
        distill_every=6,
        batch_size=batch_size,
        engine=engine,
        fetch_mode=fetch_mode,
        prefetch=False,
        transport="http",
        transport_options=dict(FIXTURE_TRANSPORT_OPTIONS),
        cassette_path=cassette_path,
        cassette_mode=cassette_mode,
        **overrides,
    )


def fixture_seeds(base_url: str) -> tuple:
    return (f"{base_url}/index.html",)


def write_cassette_header(path: str, meta: dict) -> None:
    """Start a cassette file with *meta* in its header (record appends)."""
    from repro.webgraph.cassette import CASSETTE_FORMAT, CASSETTE_VERSION

    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"format": CASSETTE_FORMAT, "version": CASSETTE_VERSION, "meta": meta},
                sort_keys=True,
            )
            + "\n"
        )


def record_fixture_cassette(
    path: str,
    port: int = 0,
    max_pages: int = FIXTURE_MAX_PAGES,
    system=None,
    **config_overrides,
):
    """Record the standard fixture crawl into *path*; returns (result, meta).

    *config_overrides* reach :func:`fixture_crawler_config` — e.g.
    ``engine="batched", batch_size=4`` records the batched engine's own
    visit sequence (batch checkout orders pages differently from the
    serial engine's per-page rescoring, so each engine shape replays
    against its own recording).
    """
    from repro import JobSpec

    with FixtureSite(port=port) as site:
        seeds = fixture_seeds(site.base_url)
        meta = {
            "site": "fixture_site",
            "seeds": list(seeds),
            "max_pages": max_pages,
            "transport_options": FIXTURE_TRANSPORT_OPTIONS,
        }
        write_cassette_header(path, meta)
        if system is None:
            system = build_fixture_system()
        handle = system.start(
            JobSpec(
                seeds=seeds,
                crawler=fixture_crawler_config(
                    path, cassette_mode="record", max_pages=max_pages, **config_overrides
                ),
            )
        )
        result = handle.run()
        handle.close()  # flushes the cassette, closes the HTTP session
        return result, meta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", metavar="PATH", help="record the standard fixture crawl into PATH")
    parser.add_argument("--port", type=int, default=0, help="fixture server port (0 = ephemeral; use a fixed port for committed cassettes)")
    parser.add_argument("--max-pages", type=int, default=FIXTURE_MAX_PAGES)
    parser.add_argument("--lint", nargs="+", metavar="PATH", help="schema-lint cassette files")
    parser.add_argument("--serve", action="store_true", help="serve the fixture site until interrupted")
    args = parser.parse_args(argv)

    if args.lint:
        from repro.webgraph.cassette import lint_cassette

        for path in args.lint:
            summary = lint_cassette(path)
            print(f"{path}: OK {json.dumps(summary, sort_keys=True)}")
        return 0
    if args.record:
        result, meta = record_fixture_cassette(args.record, port=args.port, max_pages=args.max_pages)
        print(
            f"recorded {args.record}: {result.pages_fetched()} pages, "
            f"harvest {result.harvest_rate():.4f}, seeds {meta['seeds']}"
        )
        return 0
    if args.serve:
        with FixtureSite(port=args.port) as site:
            print(f"fixture site at {site.base_url} (Ctrl-C to stop)")
            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                pass
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
