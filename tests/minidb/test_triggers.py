"""Tests for statement triggers."""

import pytest

from repro.minidb import CatalogError, Database, FLOAT, INTEGER, make_schema
from repro.minidb.triggers import Trigger


@pytest.fixture()
def db():
    database = Database()
    database.create_table(
        "CRAWL",
        make_schema(("oid", INTEGER, False), ("relevance", FLOAT), primary_key=["oid"]),
    )
    return database


class TestTriggers:
    def test_trigger_fires_on_insert(self, db):
        events = []
        db.create_trigger("t", "CRAWL", lambda e, t, rows: events.append((e, len(rows))))
        db.table("CRAWL").insert({"oid": 1, "relevance": 0.5})
        assert events == [("insert", 1)]

    def test_trigger_event_filtering(self, db):
        events = []
        db.create_trigger("t", "CRAWL", lambda e, t, rows: events.append(e), events=("delete",))
        table = db.table("CRAWL")
        table.insert({"oid": 1, "relevance": 0.5})
        table.delete_where(None)
        assert events == ["delete"]

    def test_trigger_batching_every_n_rows(self, db):
        fired = []
        db.create_trigger(
            "batch", "CRAWL", lambda e, t, rows: fired.append(e), every_n_rows=10
        )
        table = db.table("CRAWL")
        for i in range(25):
            table.insert({"oid": i, "relevance": 0.1})
        assert len(fired) == 2  # fires after 10 and 20 rows, not after every insert

    def test_bulk_insert_counts_as_row_batch(self, db):
        fired = []
        db.create_trigger("bulk", "CRAWL", lambda e, t, rows: fired.append(len(rows)), every_n_rows=5)
        db.table("CRAWL").insert_many({"oid": i, "relevance": 0.1} for i in range(7))
        assert fired == [7]

    def test_disabled_trigger_does_not_fire(self, db):
        fired = []
        trigger = db.create_trigger("t", "CRAWL", lambda e, t, rows: fired.append(e))
        trigger.enabled = False
        db.table("CRAWL").insert({"oid": 1, "relevance": 0.5})
        assert fired == []
        assert trigger.fire_count == 0

    def test_duplicate_and_missing_trigger_names(self, db):
        db.create_trigger("t", "CRAWL", lambda e, t, rows: None)
        with pytest.raises(CatalogError):
            db.create_trigger("t", "CRAWL", lambda e, t, rows: None)
        db.drop_trigger("t")
        with pytest.raises(CatalogError):
            db.drop_trigger("t")

    def test_trigger_on_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_trigger("t", "NOPE", lambda e, t, rows: None)

    def test_invalid_trigger_configuration(self):
        with pytest.raises(CatalogError):
            Trigger("bad", "CRAWL", lambda e, t, rows: None, events=("upsert",))
        with pytest.raises(CatalogError):
            Trigger("bad", "CRAWL", lambda e, t, rows: None, every_n_rows=0)

    def test_update_statement_fires_trigger(self, db):
        fired = []
        db.create_trigger("t", "CRAWL", lambda e, t, rows: fired.append(e), events=("update",))
        table = db.table("CRAWL")
        table.insert({"oid": 1, "relevance": 0.5})
        db.sql("update CRAWL set relevance = 0.9 where oid = 1")
        assert "update" in fired

    def test_registry_lookup_and_listing(self, db):
        db.create_trigger("a", "CRAWL", lambda e, t, rows: None)
        db.create_trigger("b", "CRAWL", lambda e, t, rows: None)
        assert db.triggers.names() == ["a", "b"]
        assert db.triggers.get("a").table_name == "CRAWL"
        assert len(db.triggers.for_table("CRAWL")) == 2
