"""Background segment compaction: off-pause rewrites adopted at checkpoints.

The inline compactor rewrites the segment file *inside* the checkpoint
pause.  Background mode moves the rewrite onto a maintenance worker: a
prepare copies the live images of a directory snapshot into a new
epoch-stamped file while writes keep flowing, and the next checkpoint
merely folds in the since-prepare delta and publishes through the same
atomic snapshot rename.  Assurance layers, cheapest first:

* behavioural — a prepared rewrite is adopted, reclaims garbage, keeps
  rids and rows bit-stable, drops deleted pages, and recovers
  identically after reopen;
* trigger policy — garbage ratio and WAL-byte accumulation both fire,
  ``compact_every=0`` still disables;
* a threaded smoke test — the daemon worker actually prepares without
  being driven by hand;
* an exhaustive **crash walk** — the synchronous test drive runs the
  prepare + delta + adoption + publish through a
  :class:`~repro.minidb.testing.FaultInjector`, then replays the run
  once per I/O index with a crash injected exactly there; recovery must
  reproduce the identical logical state every time.
"""

import os
import time

import pytest

from repro.minidb import Database, FLOAT, INTEGER, StorageConfig, TEXT, make_schema
from repro.minidb.backend import segment_file_name
from repro.minidb.testing import FaultInjector, SimulatedCrash, hard_close

TORTURE_SEEDS = [
    int(seed) for seed in os.environ.get("REPRO_TORTURE_SEEDS", "0").split(",")
]


def rows_schema():
    return make_schema(
        ("k", INTEGER, False),
        ("score", FLOAT),
        ("tag", TEXT),
        primary_key=["k"],
    )


def table_state(database, name="T"):
    """Everything recovery must preserve: rids and rows, bit for bit."""
    table = database.table(name)
    return [
        ((rid.page_id.file_id, rid.page_id.page_no, rid.slot), row)
        for rid, row in table.scan()
    ]


def segment_files(path):
    return sorted(name for name in os.listdir(path) if name.startswith("segments"))


def open_background(path, ops=None, ratio=1.0, wal_bytes=0, pool=4):
    """A durable database in background-compaction mode.

    The default ``ratio=1.0`` keeps the trigger from ever firing on its
    own, so tests that drive :meth:`run_compaction_once` synchronously
    stay deterministic (the worker thread never wakes).
    """
    return Database.open(
        str(path),
        buffer_pool_pages=pool,
        page_size=512,
        storage=StorageConfig(
            compact_min_garbage_ratio=ratio,
            background_compaction=True,
            compact_wal_bytes=wal_bytes,
            ops=ops,
        ),
    )


def fill_with_garbage(db, rewrites=3):
    table = db.create_table("T", rows_schema())
    table.insert_many([(k, float(k), f"row{k}") for k in range(120)])
    db.checkpoint()
    for round_no in range(rewrites):
        table.update_rows(
            [
                (rid, {"score": row[1] + 1.0})
                for rid, row in table.scan()
                if row[0] % 2 == round_no % 2
            ]
        )
    return table


class TestBackgroundCompaction:
    def test_prepare_and_adopt_reclaims_garbage(self, tmp_path):
        with open_background(tmp_path / "db") as db:
            table = fill_with_garbage(db)
            db.buffer_pool.flush_all()
            bloated = db.io_snapshot()
            assert bloated["segment_bytes_dead"] > 0

            assert db.backend.run_compaction_once(force=True)
            assert db.backend.compactions_prepared == 1
            assert db.backend.compactions_run == 0  # prepared, not adopted

            # Writes keep flowing between prepare and adoption: the
            # checkpoint folds this delta into the prepared file.
            table.update_rows(
                [(rid, {"tag": "delta"}) for rid, row in table.scan() if row[0] < 20]
            )
            expected = table_state(db)
            db.checkpoint()
            snap = db.io_snapshot()
            assert snap["compactions_run"] == 1
            assert snap["bytes_reclaimed"] > 0
            assert snap["segment_bytes_total"] < bloated["segment_bytes_total"]
            assert table_state(db) == expected  # the swap is invisible

        with Database.open(str(tmp_path / "db"), buffer_pool_pages=4) as recovered:
            assert table_state(recovered) == expected
            rows = {row[0]: row for _rid, row in recovered.table("T").scan()}
            assert rows[3][2] == "delta"

    def test_deleted_pages_are_dropped_at_adoption(self, tmp_path):
        with open_background(tmp_path / "db") as db:
            table = fill_with_garbage(db)
            db.buffer_pool.flush_all()
            assert db.backend.run_compaction_once(force=True)
            doomed = [rid for rid, row in table.scan() if row[0] < 30]
            for rid in doomed:
                table.delete_row(rid)
            db.checkpoint()
            assert db.backend.compactions_run == 1

        with Database.open(str(tmp_path / "db")) as recovered:
            table = recovered.table("T")
            assert len(table) == 90
            for key in range(30):
                assert table.get_by_key((key,)) is None

    def test_checkpoint_without_prepare_adopts_nothing(self, tmp_path):
        with open_background(tmp_path / "db") as db:
            fill_with_garbage(db)
            db.checkpoint()
            assert db.backend.compactions_run == 0
            assert db.backend.segment_epoch == 0

    def test_unadopted_prepare_is_discarded_on_close(self, tmp_path):
        with open_background(tmp_path / "db") as db:
            fill_with_garbage(db)
            db.checkpoint()
            db.buffer_pool.flush_all()
            assert db.backend.run_compaction_once(force=True)
            epoch = db.backend.segment_epoch
        assert segment_files(tmp_path / "db") == [segment_file_name(epoch)]
        with Database.open(str(tmp_path / "db")) as recovered:
            assert len(recovered.table("T")) == 120

    def test_refresh_rebases_prepared_file(self, tmp_path):
        """The worker folds deltas off-pause; adoption folds only the rest."""
        with open_background(tmp_path / "db", wal_bytes=1) as db:
            backend = db.backend
            backend._compaction_thread = None  # drive synchronously
            table = fill_with_garbage(db)
            db.buffer_pool.flush_all()
            assert backend.run_compaction_once(force=True)

            # First delta window: re-based into the prepared file by the
            # background refresh, off the checkpoint pause.
            table.update_rows(
                [(rid, {"tag": "w1"}) for rid, row in table.scan() if row[0] < 40]
            )
            db.buffer_pool.flush_all()
            assert backend._refresh_due()
            assert backend.refresh_prepared_compaction()
            assert backend.compactions_refreshed == 1
            assert not backend._refresh_due()  # the WAL marker reset

            # Second delta window: the residual the adoption folds.
            table.update_rows(
                [(rid, {"tag": "w2"}) for rid, row in table.scan() if row[0] < 10]
            )
            expected = table_state(db)
            db.checkpoint()
            assert backend.compactions_run == 1
            assert table_state(db) == expected

        with Database.open(str(tmp_path / "db"), buffer_pool_pages=4) as recovered:
            assert table_state(recovered) == expected
            rows = {row[0]: row for _rid, row in recovered.table("T").scan()}
            assert rows[5][2] == "w2"
            assert rows[20][2] == "w1"

    def test_resumed_wal_after_adoption(self, tmp_path):
        """Post-adoption writes replay cleanly over the new segment file."""
        with open_background(tmp_path / "db") as db:
            table = fill_with_garbage(db)
            db.buffer_pool.flush_all()
            db.backend.run_compaction_once(force=True)
            db.checkpoint()
            table.insert((999, 9.9, "after"))
            expected = table_state(db)
            db.sync_wal()
            hard_close(db)  # crash without a checkpoint: WAL replay path
        with Database.open(str(tmp_path / "db")) as recovered:
            assert table_state(recovered) == expected


class TestTriggerPolicy:
    def test_garbage_ratio_trigger(self, tmp_path):
        with open_background(tmp_path / "db", ratio=0.05) as db:
            backend = db.backend
            assert not backend._background_compaction_due()  # nothing dead yet
            fill_with_garbage(db)
            db.buffer_pool.flush_all()
            # The worker may have been poked already; the due-question
            # itself is what this test pins down.
            assert backend._background_compaction_due() or backend._prepared

    def test_wal_bytes_trigger(self, tmp_path):
        with open_background(tmp_path / "db", ratio=1.0, wal_bytes=1) as db:
            backend = db.backend
            # Defuse the worker so the assertion races nothing.
            backend._compaction_thread = None
            fill_with_garbage(db)
            db.buffer_pool.flush_all()
            assert backend._background_compaction_due()
            assert backend.run_compaction_once()
            # The WAL marker resets at prepare: not due again right away.
            assert not backend._background_compaction_due()

    def test_compact_every_zero_disables(self, tmp_path):
        with Database.open(
            str(tmp_path / "db"),
            storage=StorageConfig(
                compact_every=0, background_compaction=True, compact_wal_bytes=1
            ),
        ) as db:
            fill_with_garbage(db)
            db.buffer_pool.flush_all()
            assert not db.backend._background_compaction_due()
            assert not db.backend.run_compaction_once(force=True)
            db.checkpoint()
            assert db.backend.compactions_run == 0

    def test_worker_prepares_unprompted(self, tmp_path):
        """The daemon thread reacts to the garbage-ratio poke by itself."""
        with open_background(tmp_path / "db", ratio=0.05) as db:
            fill_with_garbage(db)
            db.buffer_pool.flush_all()
            db.backend._poke_compaction_worker()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if db.backend.compactions_prepared:
                    break
                time.sleep(0.01)
            assert db.backend.compaction_error is None
            assert db.backend.compactions_prepared >= 1
            expected = table_state(db)
            db.checkpoint()
            assert db.backend.compactions_run == 1
            assert table_state(db) == expected


class TestBackgroundCrashWalk:
    """Crash at every I/O point of the prepare and of the adopting checkpoint.

    The workload is staged so that every logical mutation is fully
    WAL-logged *before* each tortured window starts; recovery therefore
    has one exact expected state per window (pre-delta for crashes
    inside the prepare, the full folded state for crashes anywhere in
    the adopting checkpoint — before or after the snapshot-rename
    commit point), and the walk asserts bit-for-bit equality at every
    single I/O index.
    """

    def run_workload(self, path, seed, crash_offset=None):
        """Returns ``(injector, db, (state_pre, state_mid, state_full), windows)``.

        *windows* is ``((prepare_offset, prepare_points),
        (refresh_offset, refresh_points), (checkpoint_offset,
        checkpoint_points))`` relative to the armed region's start; on a
        crashed run the states/windows are ``None``.
        """
        import random

        rng = random.Random(seed)
        injector = FaultInjector()
        db = open_background(path, ops=injector)
        table = db.create_table("T", rows_schema())
        table.insert_many([(k, float(k), f"r{k}") for k in range(100)])
        db.checkpoint()  # an earlier, undisturbed checkpoint generation
        rids = [rid for rid, _row in table.scan()]
        for rid in rng.sample(rids, 40):
            table.update_row(rid, {"score": rng.random()})
        db.buffer_pool.flush_all()
        state_pre = table_state(db)

        start = injector.op_count
        if crash_offset is not None:
            injector.crash_at = start + crash_offset
        try:
            # The background prepare: the synchronous test drive runs the
            # exact code the worker thread would, with deterministic I/O.
            assert db.backend.run_compaction_once(force=True)
            prepare_points = injector.op_count - start
            # A first delta window, re-based into the prepared file by a
            # worker-side refresh (its writes are the second tortured
            # window: the file is unpublished, so any crash is fenced).
            for rid in rng.sample(rids, 12):
                table.update_row(rid, {"tag": "mid"})
            db.buffer_pool.flush_all()
            state_mid = table_state(db)
            refresh_offset = injector.op_count - start
            assert db.backend.refresh_prepared_compaction(force=True)
            refresh_points = injector.op_count - start - refresh_offset
            # The residual delta the adoption must fold in (its own
            # I/O is never crashed: these offsets are skipped below).
            for rid in rng.sample(rids, 15):
                table.delete_row(rid)
            table.insert_many([(200 + k, 0.5, "late") for k in range(10)])
            db.buffer_pool.flush_all()
            state_full = table_state(db)
            checkpoint_offset = injector.op_count - start
            db.checkpoint()  # the adopting checkpoint
            checkpoint_points = injector.op_count - start - checkpoint_offset
        except SimulatedCrash:
            return injector, db, None, None
        windows = (
            (0, prepare_points),
            (refresh_offset, refresh_points),
            (checkpoint_offset, checkpoint_points),
        )
        return injector, db, (state_pre, state_mid, state_full), windows

    @pytest.mark.parametrize("seed", TORTURE_SEEDS)
    def test_recovery_from_every_io_point(self, tmp_path, seed):
        injector, db, states, windows = self.run_workload(tmp_path / "dry", seed)
        state_pre, state_mid, state_full = states
        (_, prepare_points), refresh_win, checkpoint_win = windows
        assert db.backend.compactions_prepared == 1
        assert db.backend.compactions_refreshed == 1
        assert db.backend.compactions_run == 1
        assert db.backend.bytes_reclaimed > 0
        assert table_state(db) == state_full
        assert prepare_points > 5  # rewrite writes + fsync
        assert refresh_win[1] >= 2  # re-based frames + fsync
        assert checkpoint_win[1] > 5  # delta fold + snapshot + WAL + fence

        db.close()

        offsets = (
            [(offset, state_pre) for offset in range(prepare_points)]
            + [(refresh_win[0] + i, state_mid) for i in range(refresh_win[1])]
            + [(checkpoint_win[0] + i, state_full) for i in range(checkpoint_win[1])]
        )
        for crash_offset, expected in offsets:
            path = tmp_path / f"crash-{crash_offset}"
            _, crashed_db, _, _ = self.run_workload(path, seed, crash_offset=crash_offset)
            hard_close(crashed_db)

            with open_background(path) as recovered:
                assert table_state(recovered) == expected, (
                    f"seed {seed}: state diverged after crash at I/O point "
                    f"{crash_offset}"
                )
                assert len(segment_files(path)) == 1  # stale files fenced
                # The survivor is fully operational: more writes, another
                # background compaction, and the garbage is gone again.
                recovered.table("T").insert((900 + crash_offset, 1.0, "post"))
                recovered.buffer_pool.flush_all()
                recovered.backend.run_compaction_once(force=True)
                recovered.checkpoint()
                assert recovered.backend.compactions_run >= 1
                snap = recovered.io_snapshot()
                assert snap["segment_bytes_total"] <= 1.2 * snap["segment_bytes_live"]
