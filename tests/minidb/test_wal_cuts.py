"""WAL cut markers: cheap round boundaries for the sharded crawl rewind.

``Database.log_cut(n)`` stamps the WAL; ``Database.open(replay_upto_cut=n)``
replays through the last marker ``<= n`` and truncates everything after
it.  The total rule — *no* marker at or below the target means truncate
to the snapshot — is what makes every crash point recoverable: a torn
round, a half-appended marker, or a WAL reset that raced a crash all
land on a state some coordinator manifest describes.
"""

import pytest

from repro.minidb import Database, INTEGER, TEXT, StorageConfig, make_schema
from repro.minidb.errors import StorageError
from repro.minidb.testing import FaultInjector, SimulatedCrash, hard_close


def make_db(path) -> Database:
    database = Database.open(str(path))
    database.create_table(
        "T", make_schema(("id", INTEGER, False), ("val", TEXT), primary_key=["id"])
    )
    return database


def insert_round(database: Database, round_no: int, rows: int = 3) -> None:
    table = database.table("T")
    table.insert_many(
        (round_no * 100 + i, f"r{round_no}-{i}") for i in range(rows)
    )
    database.log_cut(round_no)


def ids(database: Database) -> list:
    return sorted(row[0] for row in database.table("T").rows())


class TestCutMarkers:
    def test_replay_upto_cut_rewinds_to_the_marker(self, tmp_path):
        database = make_db(tmp_path)
        for round_no in (1, 2, 3):
            insert_round(database, round_no)
        database.close()

        reopened = Database.open(str(tmp_path), replay_upto_cut=2)
        assert ids(reopened) == [100, 101, 102, 200, 201, 202]
        reopened.close()

    def test_replay_past_last_cut_discards_the_open_round(self, tmp_path):
        """Rows logged after the last marker (a round in flight when the
        process died) are truncated, not replayed."""
        database = make_db(tmp_path)
        insert_round(database, 1)
        database.table("T").insert((999, "uncommitted"))
        database.close()

        reopened = Database.open(str(tmp_path), replay_upto_cut=1)
        assert ids(reopened) == [100, 101, 102]
        # The tail was truncated: a plain reopen no longer sees it either.
        reopened.close()
        replayed = Database.open(str(tmp_path))
        assert ids(replayed) == [100, 101, 102]
        replayed.close()

    def test_no_cut_at_or_below_target_truncates_to_snapshot(self, tmp_path):
        """The total rule: target below every marker -> snapshot state."""
        database = make_db(tmp_path)
        database.checkpoint()  # snapshot: table exists, no rows
        for round_no in (5, 6):
            insert_round(database, round_no)
        database.close()

        reopened = Database.open(str(tmp_path), replay_upto_cut=4)
        assert ids(reopened) == []
        reopened.close()

    def test_cut_markers_are_transparent_to_full_replay(self, tmp_path):
        database = make_db(tmp_path)
        for round_no in (1, 2):
            insert_round(database, round_no)
        database.close()

        reopened = Database.open(str(tmp_path))
        assert ids(reopened) == [100, 101, 102, 200, 201, 202]
        reopened.close()

    def test_in_memory_database_refuses_log_cut(self):
        database = Database()
        with pytest.raises(StorageError, match="in-memory"):
            database.log_cut(1)

    def test_replay_upto_cut_requires_replay_wal(self, tmp_path):
        make_db(tmp_path).close()
        with pytest.raises(ValueError, match="replay_upto_cut"):
            Database.open(str(tmp_path), replay_wal=False, replay_upto_cut=1)

    def test_crash_during_round_recovers_to_previous_cut(self, tmp_path):
        """A torn WAL tail mid-round still rewinds to the last marker."""
        injector = FaultInjector()
        database = Database.open(str(tmp_path), storage=StorageConfig(ops=injector))
        database.create_table(
            "T", make_schema(("id", INTEGER, False), ("val", TEXT), primary_key=["id"])
        )
        insert_round(database, 1)
        database.sync_wal()
        injector.crash_at = injector.op_count + 1
        with pytest.raises(SimulatedCrash):
            insert_round(database, 2, rows=50)
        hard_close(database)

        reopened = Database.open(str(tmp_path), replay_upto_cut=1)
        assert ids(reopened) == [100, 101, 102]
        reopened.close()


class TestOpsFactory:
    """Each durable database minted from one StorageConfig gets its own
    FileOps — shared fault-injection state across shard databases would
    crash every shard at once (and miscount every I/O index)."""

    def test_factory_mints_one_ops_per_database(self, tmp_path):
        minted = []

        def factory():
            injector = FaultInjector()
            minted.append(injector)
            return injector

        storage = StorageConfig(ops_factory=factory)
        db_a = Database.open(str(tmp_path / "a"), storage=storage)
        db_b = Database.open(str(tmp_path / "b"), storage=storage)
        assert len(minted) == 2
        assert minted[0] is not minted[1]
        db_a.close()
        db_b.close()

    def test_two_databases_fault_inject_independently(self, tmp_path):
        minted = []

        def factory():
            injector = FaultInjector()
            minted.append(injector)
            return injector

        storage = StorageConfig(ops_factory=factory)
        db_a = make_db_with(tmp_path / "a", storage)
        db_b = make_db_with(tmp_path / "b", storage)
        ops_a, ops_b = minted

        ops_a.crash_at = ops_a.op_count  # the very next I/O on A
        with pytest.raises(SimulatedCrash):
            db_a.table("T").insert((1, "boom"))
        hard_close(db_a)

        # B is unaffected: its injector never saw A's crash, its counter
        # kept its own sequence, and it keeps writing.
        assert not ops_b.crashed
        db_b.table("T").insert((1, "fine"))
        db_b.log_cut(1)
        db_b.close()
        reopened = Database.open(str(tmp_path / "b"))
        assert ids(reopened) == [1]
        reopened.close()


def make_db_with(path, storage: StorageConfig) -> Database:
    database = Database.open(str(path), storage=storage)
    database.create_table(
        "T", make_schema(("id", INTEGER, False), ("val", TEXT), primary_key=["id"])
    )
    return database
