"""Unit tests for the LRU buffer pool and its I/O accounting."""

import pytest

from repro.minidb import BufferPoolError
from repro.minidb.buffer_pool import BufferPool, IOStats
from repro.minidb.pages import PageId


def fill(pool: BufferPool, count: int, file_id: int = 0):
    pages = []
    for i in range(count):
        pages.append(pool.create_page(PageId(file_id, i), capacity=4096))
    return pages


class TestBufferPool:
    def test_create_and_get_counts_logical_reads(self):
        pool = BufferPool(4)
        fill(pool, 2)
        pool.get_page(PageId(0, 0))
        pool.get_page(PageId(0, 1))
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 0

    def test_eviction_and_refetch_counts_physical_read(self):
        pool = BufferPool(2)
        fill(pool, 3)  # capacity 2 → one eviction
        assert pool.stats.evictions >= 1
        assert pool.resident_pages == 2
        # the first page was evicted (LRU); touching it again is a miss
        pool.get_page(PageId(0, 0))
        assert pool.stats.physical_reads == 1

    def test_dirty_pages_written_back_on_eviction(self):
        pool = BufferPool(1)
        fill(pool, 1)
        pool.mark_dirty(PageId(0, 0))
        pool.create_page(PageId(0, 1), 4096)  # forces eviction of page 0
        assert pool.stats.physical_writes >= 1

    def test_lru_order_follows_access(self):
        pool = BufferPool(2)
        fill(pool, 2)
        pool.get_page(PageId(0, 0))  # page 0 becomes most recent
        pool.create_page(PageId(0, 2), 4096)  # evicts page 1
        assert pool.is_resident(PageId(0, 0))
        assert not pool.is_resident(PageId(0, 1))

    def test_pinned_pages_are_not_evicted(self):
        pool = BufferPool(2)
        fill(pool, 2)
        pool.pin(PageId(0, 0))
        pool.pin(PageId(0, 1))
        with pytest.raises(BufferPoolError):
            pool.create_page(PageId(0, 2), 4096)
        pool.unpin(PageId(0, 1))
        pool.create_page(PageId(0, 2), 4096)

    def test_sequential_miss_detection(self):
        pool = BufferPool(2)
        fill(pool, 6)
        pool.clear_cache()
        stats_before = pool.stats.copy()
        for i in range(6):
            pool.get_page(PageId(0, i))
        delta = pool.stats.diff(stats_before)
        assert delta.physical_reads == 6
        # All but the first miss continue the scan, so they are sequential.
        assert delta.sequential_reads == 5
        assert delta.simulated_cost() < 6 * pool.stats.read_cost + 6 * pool.stats.cpu_cost

    def test_random_misses_cost_more_than_sequential(self):
        stats = IOStats(physical_reads=10, sequential_reads=0, logical_reads=10)
        sequential = IOStats(physical_reads=10, sequential_reads=9, logical_reads=10)
        assert stats.simulated_cost() > sequential.simulated_cost()

    def test_resize_shrinks_and_evicts(self):
        pool = BufferPool(8)
        fill(pool, 8)
        pool.resize(2)
        assert pool.resident_pages == 2
        assert pool.total_pages() == 8

    def test_clear_cache_preserves_data(self):
        pool = BufferPool(4)
        pages = fill(pool, 3)
        pages[0].insert((1, "x"), 16)
        pool.mark_dirty(PageId(0, 0))
        pool.clear_cache()
        assert pool.resident_pages == 0
        page = pool.get_page(PageId(0, 0))
        assert page.read(0) == (1, "x")

    def test_missing_page_raises(self):
        pool = BufferPool(2)
        with pytest.raises(BufferPoolError):
            pool.get_page(PageId(0, 99))

    def test_duplicate_create_rejected(self):
        pool = BufferPool(2)
        fill(pool, 1)
        with pytest.raises(BufferPoolError):
            pool.create_page(PageId(0, 0), 4096)

    def test_capacity_must_be_positive(self):
        with pytest.raises(BufferPoolError):
            BufferPool(0)

    def test_stats_reset_and_hit_ratio(self):
        pool = BufferPool(2)
        fill(pool, 2)
        pool.get_page(PageId(0, 0))
        assert pool.stats.hit_ratio() == 1.0
        pool.stats.reset()
        assert pool.stats.logical_reads == 0
        assert pool.stats.hit_ratio() == 1.0

    def test_drop_page_removes_without_write(self):
        pool = BufferPool(2)
        fill(pool, 1)
        pool.drop_page(PageId(0, 0))
        with pytest.raises(BufferPoolError):
            pool.get_page(PageId(0, 0))

    def test_flush_all_writes_dirty_pages(self):
        pool = BufferPool(4)
        fill(pool, 2)  # freshly created pages start dirty
        pool.flush_all()
        assert pool.stats.physical_writes == 2
        pool.flush_all()  # everything clean now: nothing to write
        assert pool.stats.physical_writes == 2
        pool.mark_dirty(PageId(0, 1))
        pool.flush_all()
        assert pool.stats.physical_writes == 3
