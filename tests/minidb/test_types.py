"""Unit tests for minidb column types, schemas, and row handling."""

import pytest

from repro.minidb import BLOB, FLOAT, INTEGER, TEXT, Column, Schema, SchemaError, make_schema
from repro.minidb.types import ColumnType


class TestColumnType:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_integer_accepts_integral_float(self):
        assert INTEGER.validate(3.0) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            INTEGER.validate(3.5)

    def test_integer_rejects_string(self):
        with pytest.raises(SchemaError):
            INTEGER.validate("7")

    def test_integer_coerces_bool(self):
        assert INTEGER.validate(True) == 1

    def test_float_accepts_int_and_float(self):
        assert FLOAT.validate(2) == 2.0
        assert FLOAT.validate(2.5) == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(SchemaError):
            FLOAT.validate(True)

    def test_text_accepts_str_only(self):
        assert TEXT.validate("abc") == "abc"
        with pytest.raises(SchemaError):
            TEXT.validate(123)

    def test_blob_accepts_bytes(self):
        assert BLOB.validate(b"\x00\x01") == b"\x00\x01"
        assert BLOB.validate(bytearray(b"xy")) == b"xy"
        with pytest.raises(SchemaError):
            BLOB.validate("not bytes")

    def test_none_passes_through(self):
        for column_type in ColumnType:
            assert column_type.validate(None) is None

    def test_storage_size_scales_with_text_length(self):
        assert TEXT.storage_size("abcd") > TEXT.storage_size("a")
        assert INTEGER.storage_size(1) == 8


class TestColumn:
    def test_not_null_enforced(self):
        column = Column("oid", INTEGER, nullable=False)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_nullable_allows_none(self):
        assert Column("score", FLOAT).validate(None) is None


class TestSchema:
    def setup_method(self):
        self.schema = make_schema(
            ("oid", INTEGER, False),
            ("url", TEXT),
            ("relevance", FLOAT),
            primary_key=["oid"],
        )

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", INTEGER), Column("a", TEXT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema(("a", INTEGER), primary_key=["missing"])

    def test_positions_and_membership(self):
        assert self.schema.position("url") == 1
        assert "relevance" in self.schema
        assert "nope" not in self.schema
        with pytest.raises(SchemaError):
            self.schema.position("nope")

    def test_validate_row_checks_arity(self):
        with pytest.raises(SchemaError):
            self.schema.validate_row((1, "x"))

    def test_row_from_mapping_fills_missing_with_null(self):
        row = self.schema.row_from_mapping({"oid": 5, "url": "http://a"})
        assert row == (5, "http://a", None)

    def test_row_from_mapping_rejects_unknown_columns(self):
        with pytest.raises(SchemaError):
            self.schema.row_from_mapping({"oid": 5, "bogus": 1})

    def test_row_round_trip(self):
        row = self.schema.row_from_mapping({"oid": 9, "url": "u", "relevance": 0.5})
        assert self.schema.row_to_mapping(row) == {"oid": 9, "url": "u", "relevance": 0.5}

    def test_key_of_extracts_primary_key(self):
        row = self.schema.validate_row((7, "u", 0.1))
        assert self.schema.key_of(row) == (7,)

    def test_row_size_positive_and_monotone(self):
        short = self.schema.validate_row((1, "a", 0.1))
        long = self.schema.validate_row((1, "a" * 100, 0.1))
        assert 0 < self.schema.row_size(short) < self.schema.row_size(long)

    def test_bad_column_spec_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(("just_one_element",))
