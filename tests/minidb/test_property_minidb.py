"""Property-based tests for the minidb engine (hypothesis)."""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.minidb import Database, FLOAT, INTEGER, TEXT, col, make_schema
from repro.minidb.operators import (
    Aggregate,
    GroupByAggregate,
    HashJoin,
    NestedLoopJoin,
    RowSource,
    SortMergeJoin,
)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.floats(0, 1, allow_nan=False), st.text(max_size=6)),
    max_size=60,
)

pairs_strategy = st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=40)


class TestTableProperties:
    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_inserted_rows_round_trip_through_heap(self, rows):
        db = Database(buffer_pool_pages=8)
        table = db.create_table(
            "T", make_schema(("k", INTEGER, False), ("v", FLOAT), ("s", TEXT))
        )
        table.insert_many({"k": k, "v": v, "s": s} for k, v, s in rows)
        fetched = sorted((r["k"], r["v"], r["s"]) for r in table.rows_as_dicts())
        assert fetched == sorted(rows)
        assert len(table) == len(rows)

    @given(rows=rows_strategy, threshold=st.floats(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_delete_where_equals_python_filter(self, rows, threshold):
        db = Database(buffer_pool_pages=8)
        table = db.create_table("T", make_schema(("k", INTEGER), ("v", FLOAT)))
        table.insert_many({"k": k, "v": v} for k, v, _ in rows)
        from repro.minidb import lit

        deleted = table.delete_where(col("v") > lit(threshold))
        expected_remaining = [(k, v) for k, v, _ in rows if not v > threshold]
        assert deleted == len(rows) - len(expected_remaining)
        assert sorted((r["k"], r["v"]) for r in table.rows_as_dicts()) == sorted(
            expected_remaining
        )


class TestJoinProperties:
    @given(left=pairs_strategy, right=pairs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_join_algorithms_agree(self, left, right):
        left_rows = [{"lk": a, "lv": b} for a, b in left]
        right_rows = [{"rk": a, "rv": b} for a, b in right]

        def run(cls):
            result = cls(
                RowSource(list(left_rows)),
                RowSource(list(right_rows)),
                [col("lk")],
                [col("rk")],
            ).to_list()
            return Counter((r["lk"], r["lv"], r["rk"], r["rv"]) for r in result)

        hash_result = run(HashJoin)
        merge_result = run(SortMergeJoin)
        nested = NestedLoopJoin(
            RowSource(list(left_rows)),
            RowSource(list(right_rows)),
            col("lk") == col("rk"),
        ).to_list()
        nested_result = Counter((r["lk"], r["lv"], r["rk"], r["rv"]) for r in nested)
        assert hash_result == merge_result == nested_result

    @given(rows=pairs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_by_sum_matches_python(self, rows):
        source = [{"k": a, "v": b} for a, b in rows]
        plan = GroupByAggregate(
            RowSource(source),
            [("k", col("k"))],
            [Aggregate("sum", col("v"), "total"), Aggregate("count", None, "n")],
        )
        result = {r["k"]: (r["total"], r["n"]) for r in plan.to_list()}
        expected = defaultdict(lambda: [0, 0])
        for a, b in rows:
            expected[a][0] += b
            expected[a][1] += 1
        assert set(result) == set(expected)
        for key, (total, count) in result.items():
            assert count == expected[key][1]
            assert total == pytest.approx(expected[key][0])


class TestSQLProperties:
    @given(rows=st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_sql_aggregates_match_python(self, rows):
        db = Database()
        table = db.create_table("T", make_schema(("v", INTEGER)))
        table.insert_many({"v": v} for v in rows)
        result = db.sql("select count(*) n, sum(v) s, min(v) lo, max(v) hi from T")[0]
        assert result["n"] == len(rows)
        assert result["s"] == sum(rows)
        assert result["lo"] == min(rows)
        assert result["hi"] == max(rows)

    @given(rows=st.lists(st.integers(0, 20), max_size=50), cutoff=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_sql_where_matches_python_filter(self, rows, cutoff):
        db = Database()
        table = db.create_table("T", make_schema(("v", INTEGER)))
        table.insert_many({"v": v} for v in rows)
        result = db.sql("select v from T where v >= :cut order by v", {"cut": cutoff})
        assert [r["v"] for r in result] == sorted(v for v in rows if v >= cutoff)
