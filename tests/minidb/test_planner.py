"""The index-aware planner: plan shapes, EXPLAIN stability, bit-identity."""

import pytest

from repro.minidb import (
    Database,
    FLOAT,
    INTEGER,
    QueryError,
    TEXT,
    col,
    lit,
    make_schema,
)
from repro.minidb.planner import PLANNER_MODE_ENV


@pytest.fixture()
def db():
    """A miniature crawl store: CRAWL rows, a LINK chain, a taxonomy."""
    database = Database(buffer_pool_pages=64)

    crawl = database.create_table(
        "CRAWL",
        make_schema(
            ("oid", INTEGER, False),
            ("kcid", INTEGER),
            ("relevance", FLOAT),
            ("status", TEXT),
            primary_key=["oid"],
        ),
    )
    crawl.insert_many(
        [
            {
                "oid": i,
                "kcid": 1 + i % 6,
                "relevance": (i % 10) / 10.0,
                "status": "visited" if i % 3 else "frontier",
            }
            for i in range(40)
        ]
    )

    link = database.create_table(
        "LINK",
        make_schema(("oid_src", INTEGER, False), ("oid_dst", INTEGER, False)),
    )
    link.create_index("link_src", ["oid_src"], kind="hash")
    link.create_index("link_graph", ["oid_dst", "oid_src"], kind="interval")
    link.insert_many(
        [{"oid_src": i, "oid_dst": i + 1} for i in range(39)]
        + [{"oid_src": 0, "oid_dst": 999}]
    )

    taxonomy = database.create_table(
        "TAXONOMY",
        make_schema(("kcid", INTEGER, False), ("pcid", INTEGER), primary_key=["kcid"]),
    )
    taxonomy.create_index("taxonomy_tree", ["kcid", "pcid"], kind="interval")
    taxonomy.insert_many(
        [
            {"kcid": 1, "pcid": None},
            {"kcid": 2, "pcid": 1},
            {"kcid": 3, "pcid": 1},
            {"kcid": 4, "pcid": 2},
            {"kcid": 5, "pcid": 2},
            {"kcid": 6, "pcid": 3},
        ]
    )
    return database


def explain_text(database, sql, params=None):
    return "\n".join(row["plan"] for row in database.sql(f"explain {sql}", params))


BIT_IDENTITY_QUERIES = [
    ("select oid, relevance from CRAWL where oid = :k", {"k": 7}),
    ("select oid from CRAWL where oid in (:a, :b, :c)", {"a": 3, "b": 17, "c": 999}),
    ("select oid, status from CRAWL where relevance > 0.5 order by oid", None),
    (
        "select kcid from TAXONOMY where descendant_of(kcid, :root)",
        {"root": 1},
    ),
    (
        "select oid, kcid from CRAWL where in_subtree(kcid, :root) order by oid",
        {"root": 2},
    ),
    (
        "select oid from CRAWL where reachable_from(oid, :root, 'link_graph')",
        {"root": 0},
    ),
    (
        "select C.oid, L.oid_dst from CRAWL C, LINK L "
        "where C.oid = L.oid_src and C.oid in (:a, :b)",
        {"a": 5, "b": 6},
    ),
    (
        "select oid from CRAWL where oid in "
        "(select oid_dst from LINK where oid_src < :cap)",
        {"cap": 4},
    ),
    ("select status, count(*) n from CRAWL group by status order by status", None),
]


class TestPlanShapes:
    def test_point_lookup_uses_pk_index(self, db):
        plan = explain_text(db, "select oid from CRAWL where oid = 7")
        assert "IndexKeysLookup(CRAWL.CRAWL_pk" in plan
        assert "TableScan" not in plan

    def test_in_list_uses_keys_lookup(self, db):
        plan = explain_text(
            db, "select oid from CRAWL where oid in (:a, :b)", {"a": 1, "b": 2}
        )
        assert "IndexKeysLookup(CRAWL.CRAWL_pk" in plan

    def test_taxonomy_descendants_is_an_index_range_scan(self, db):
        plan = explain_text(
            db,
            "select kcid from TAXONOMY where descendant_of(kcid, :root)",
            {"root": 1},
        )
        assert "IndexRangeScan(TAXONOMY.taxonomy_tree" in plan
        assert "descendants" in plan

    def test_reachability_drives_the_crawl_lookup(self, db):
        plan = explain_text(
            db,
            "select oid from CRAWL where reachable_from(oid, :root, 'link_graph')",
            {"root": 0},
        )
        # The reachable id-set from LINK's interval index keys a batched
        # pk lookup into CRAWL — no full scan on either side.
        assert "IndexKeysLookup(CRAWL.CRAWL_pk" in plan
        assert "TableScan" not in plan

    def test_selective_join_uses_index_nested_loop(self, db):
        plan = explain_text(
            db,
            "select C.oid, L.oid_dst from CRAWL C, LINK L "
            "where C.oid = L.oid_src and C.oid in (:a, :b)",
            {"a": 5, "b": 6},
        )
        assert "IndexNestedLoopJoin(L.link_src" in plan
        assert "IndexKeysLookup(C.CRAWL_pk" in plan

    def test_bulk_join_keeps_hash_join(self, db):
        plan = explain_text(
            db,
            "select C.oid, L.oid_dst from CRAWL C, LINK L where C.oid = L.oid_src",
        )
        # Whole-table outer: the cost gate must refuse per-row probes.
        assert "HashJoin" in plan
        assert "IndexNestedLoopJoin" not in plan

    def test_projection_pushdown_names_columns(self, db):
        plan = explain_text(db, "select oid from CRAWL where relevance > 0.5")
        assert "TableScan(CRAWL cols=[oid, relevance])" in plan

    def test_scan_mode_never_touches_indexes(self, db, monkeypatch):
        monkeypatch.setenv(PLANNER_MODE_ENV, "scan")
        plan = explain_text(db, "select oid from CRAWL where oid = 7")
        assert "TableScan(CRAWL" in plan
        assert "IndexKeysLookup" not in plan

    def test_unknown_mode_rejected(self, db, monkeypatch):
        monkeypatch.setenv(PLANNER_MODE_ENV, "oracle")
        with pytest.raises(QueryError, match="REPRO_SQL_PLANNER"):
            db.sql("select oid from CRAWL where oid = 7")


class TestExplainStability:
    def test_explain_is_deterministic(self, db):
        sql = "select kcid from TAXONOMY where descendant_of(kcid, :root)"
        first = explain_text(db, sql, {"root": 1})
        second = explain_text(db, sql, {"root": 1})
        assert first == second

    def test_explain_survives_unrelated_writes(self, db):
        sql = "select C.oid from CRAWL C, LINK L where C.oid = L.oid_src and C.oid = 3"
        before = explain_text(db, sql)
        other = db.create_table(
            "OTHER", make_schema(("k", INTEGER, False), primary_key=["k"])
        )
        other.insert_many([{"k": i} for i in range(50)])
        assert explain_text(db, sql) == before

    def test_explain_does_not_execute(self, db):
        reads_before = db.stats.logical_reads
        db.sql("explain select * from CRAWL where relevance > 0.1")
        # Planning may touch catalog metadata but must not drag the
        # whole heap through the pool.
        assert db.stats.logical_reads - reads_before < 5

    def test_last_plan_exposed(self, db):
        db.sql("select oid from CRAWL where oid = 7")
        plan = db.last_plan
        assert plan is not None
        assert plan.mode == "index"
        assert plan.explain().uses_index_path


class TestBitIdentity:
    @pytest.mark.parametrize("sql,params", BIT_IDENTITY_QUERIES)
    def test_planner_matches_scan_path(self, db, monkeypatch, sql, params):
        monkeypatch.setenv(PLANNER_MODE_ENV, "index")
        indexed = db.sql(sql, params)
        monkeypatch.setenv(PLANNER_MODE_ENV, "scan")
        scanned = db.sql(sql, params)
        assert indexed == scanned

    def test_identity_survives_deletes(self, db, monkeypatch):
        crawl = db.table("CRAWL")
        crawl.delete_where(col("oid") == lit(7))
        sql = "select oid from CRAWL where oid in (:a, :b)"
        params = {"a": 7, "b": 8}
        monkeypatch.setenv(PLANNER_MODE_ENV, "index")
        indexed = db.sql(sql, params)
        monkeypatch.setenv(PLANNER_MODE_ENV, "scan")
        assert indexed == db.sql(sql, params)
        assert [row["oid"] for row in indexed] == [8]
