"""Unit tests for secondary indexes and the Table layer."""

import pytest

from repro.minidb import (
    CatalogError,
    ConstraintError,
    Database,
    FLOAT,
    INTEGER,
    QueryError,
    TEXT,
    col,
    lit,
    make_schema,
)
from repro.minidb.index import HashIndex, OrderedIndex, build_index
from repro.minidb.pages import PageId, RecordId


def rid(n: int) -> RecordId:
    return RecordId(PageId(0, 0), n)


SCHEMA = make_schema(("oid", INTEGER, False), ("sid", INTEGER), ("score", FLOAT))


class TestHashIndex:
    def test_insert_search_delete(self):
        index = HashIndex("ix", SCHEMA, ["sid"])
        index.insert((1, 10, 0.5), rid(0))
        index.insert((2, 10, 0.6), rid(1))
        index.insert((3, 20, 0.7), rid(2))
        assert set(index.search((10,))) == {rid(0), rid(1)}
        assert index.search((99,)) == []
        index.delete((1, 10, 0.5), rid(0))
        assert index.search((10,)) == [rid(1)]
        assert len(index) == 2

    def test_delete_missing_entry_raises(self):
        index = HashIndex("ix", SCHEMA, ["sid"])
        with pytest.raises(Exception):
            index.delete((1, 10, 0.5), rid(0))

    def test_probe_count_increments(self):
        index = HashIndex("ix", SCHEMA, ["sid"])
        index.search((1,))
        index.search((2,))
        assert index.probe_count == 2


class TestOrderedIndex:
    def test_range_search_in_order(self):
        index = OrderedIndex("ox", SCHEMA, ["oid"])
        for i in (5, 1, 3, 2, 4):
            index.insert((i, 0, 0.0), rid(i))
        keys = [key for key, _ in index.range_search((2,), (4,))]
        assert keys == [(2,), (3,), (4,)]

    def test_open_ended_ranges(self):
        index = OrderedIndex("ox", SCHEMA, ["oid"])
        for i in range(5):
            index.insert((i, 0, 0.0), rid(i))
        assert len(list(index.range_search(low=(3,)))) == 2
        assert len(list(index.range_search(high=(1,)))) == 2
        assert index.min_key() == (0,)
        assert index.max_key() == (4,)

    def test_delete_removes_key_when_empty(self):
        index = OrderedIndex("ox", SCHEMA, ["oid"])
        index.insert((1, 0, 0.0), rid(0))
        index.delete((1, 0, 0.0), rid(0))
        assert index.ordered_keys() == []

    def test_build_index_factory(self):
        assert isinstance(build_index("hash", "a", SCHEMA, ["oid"]), HashIndex)
        assert isinstance(build_index("ordered", "b", SCHEMA, ["oid"]), OrderedIndex)
        with pytest.raises(CatalogError):
            build_index("btree", "c", SCHEMA, ["oid"])

    def test_index_requires_key_columns(self):
        with pytest.raises(CatalogError):
            HashIndex("bad", SCHEMA, [])


class TestTable:
    def make_table(self):
        db = Database(buffer_pool_pages=32)
        return db.create_table(
            "CRAWL",
            make_schema(
                ("oid", INTEGER, False),
                ("url", TEXT),
                ("relevance", FLOAT),
                primary_key=["oid"],
            ),
        )

    def test_insert_and_get_by_key(self):
        table = self.make_table()
        table.insert({"oid": 1, "url": "http://a", "relevance": 0.3})
        assert table.get_by_key((1,)) == (1, "http://a", 0.3)
        assert table.get_by_key((2,)) is None

    def test_duplicate_primary_key_rejected(self):
        table = self.make_table()
        table.insert({"oid": 1, "url": "a"})
        with pytest.raises(ConstraintError):
            table.insert({"oid": 1, "url": "b"})

    def test_null_primary_key_rejected(self):
        # Even when the schema column itself is nullable, the primary-key
        # constraint must refuse NULL key values.
        db = Database()
        table = db.create_table(
            "T",
            make_schema(("oid", INTEGER, True), ("url", TEXT), primary_key=["oid"]),
        )
        with pytest.raises(ConstraintError):
            table.insert({"oid": None, "url": "a"})

    def test_secondary_index_backfilled_and_maintained(self):
        table = self.make_table()
        for i in range(10):
            table.insert({"oid": i, "url": f"u{i}", "relevance": i / 10})
        index = table.create_index("by_url", ["url"])
        assert len(index) == 10
        assert table.lookup("by_url", ("u3",)) == [(3, "u3", 0.3)]
        rid_, _ = next(table.scan())
        table.update_row(rid_, {"url": "changed"})
        assert table.lookup("by_url", ("changed",)) != []

    def test_duplicate_index_name_rejected(self):
        table = self.make_table()
        table.create_index("ix", ["url"])
        with pytest.raises(CatalogError):
            table.create_index("ix", ["url"])
        table.drop_index("ix")
        with pytest.raises(CatalogError):
            table.drop_index("ix")

    def test_update_where_and_delete_where(self):
        table = self.make_table()
        for i in range(10):
            table.insert({"oid": i, "url": f"u{i}", "relevance": i / 10})
        touched = table.update_where(col("relevance") > lit(0.7), {"relevance": 1.0})
        assert touched == 2
        deleted = table.delete_where(col("relevance") == lit(1.0))
        assert deleted == 2
        assert len(table) == 8

    def test_update_preserving_pk_and_changing_pk(self):
        table = self.make_table()
        rid_ = table.insert({"oid": 1, "url": "a"})
        table.update_row(rid_, {"url": "b"})
        table.insert({"oid": 2, "url": "c"})
        with pytest.raises(ConstraintError):
            table.update_row(rid_, {"oid": 2})

    def test_truncate_resets_indexes(self):
        table = self.make_table()
        table.create_index("by_url", ["url"])
        table.insert({"oid": 1, "url": "a"})
        table.truncate()
        assert len(table) == 0
        assert table.lookup("by_url", ("a",)) == []

    def test_lookup_without_primary_key_raises(self):
        db = Database()
        table = db.create_table("NOPK", make_schema(("a", INTEGER)))
        with pytest.raises(QueryError):
            table.get_by_key((1,))

    def test_rows_as_dicts(self):
        table = self.make_table()
        table.insert({"oid": 1, "url": "a", "relevance": 0.5})
        assert list(table.rows_as_dicts()) == [{"oid": 1, "url": "a", "relevance": 0.5}]

    def test_index_on_exact_columns(self):
        table = self.make_table()
        table.create_index("by_url", ["url"])
        assert table.index_on(("url",)) is not None
        assert table.index_on(("oid",)) is not None  # primary key
        assert table.index_on(("relevance",)) is None


class TestDatabaseCatalog:
    def test_create_drop_and_missing_table(self):
        db = Database()
        db.create_table("T", make_schema(("a", INTEGER)))
        assert db.has_table("T")
        assert db.table_names() == ["T"]
        with pytest.raises(CatalogError):
            db.create_table("T", make_schema(("a", INTEGER)))
        db.drop_table("T")
        with pytest.raises(CatalogError):
            db.table("T")

    def test_io_snapshot_and_total_pages(self):
        db = Database(buffer_pool_pages=16)
        table = db.create_table("T", make_schema(("a", INTEGER), ("b", TEXT)))
        for i in range(200):
            table.insert({"a": i, "b": "x" * 30})
        snapshot = db.io_snapshot()
        assert snapshot["logical_reads"] > 0
        assert db.total_pages() == table.page_count > 0
