"""Segment-file compaction: reclamation, policy, and crash-recovery torture.

Three layers of assurance, cheapest first:

* behavioural tests — compaction reclaims dead images, honours its
  policy knobs, never resurrects deleted data, and keeps record ids
  bit-stable across the rewrite;
* an exhaustive **crash walk** — a seeded workload runs up to a
  compacting checkpoint, and then the checkpoint is re-run once per
  I/O point with a crash injected exactly there; after every single
  crash the database must reopen to the identical logical state
  (same rows, same rids, deleted rows still deleted) and keep working;
* a seeded **crawl-level property** — a durable focused crawl is
  crashed at injected I/O points *inside a mid-crawl compaction*,
  resumed, and must reproduce the uninterrupted crawl bit for bit.

Seeds come from ``REPRO_TORTURE_SEEDS`` (comma-separated) so the CI
``compaction-torture`` job can sweep a matrix; the default keeps the
tier-1 run cheap.
"""

import os
import random

import pytest

from repro.core.config import FocusConfig
from repro.core.schema import create_focus_database
from repro.core.system import FocusSystem
from repro.crawler.focused import CrawlerConfig
from repro.minidb import Database, FLOAT, INTEGER, TEXT, make_schema
from repro.minidb.backend import segment_file_name
from repro.minidb.compactor import Compactor
from repro.minidb.errors import StorageError
from repro.minidb.testing import FaultInjector, SimulatedCrash, hard_close

TORTURE_SEEDS = [
    int(seed) for seed in os.environ.get("REPRO_TORTURE_SEEDS", "0").split(",")
]


def rows_schema():
    return make_schema(
        ("k", INTEGER, False),
        ("score", FLOAT),
        ("tag", TEXT),
        primary_key=["k"],
    )


def table_state(database, name="T"):
    """Everything recovery must preserve: rids and rows, bit for bit."""
    table = database.table(name)
    return [
        ((rid.page_id.file_id, rid.page_id.page_no, rid.slot), row)
        for rid, row in table.scan()
    ]


def segment_files(path):
    return sorted(name for name in os.listdir(path) if name.startswith("segments"))


def open_compacting(path, ops=None, ratio=0.05, every=1, page_size=512, pool=4):
    return Database.open(
        str(path),
        buffer_pool_pages=pool,
        page_size=page_size,
        ops=ops,
        compact_every=every,
        compact_min_garbage_ratio=ratio,
    )


class TestCompaction:
    def fill_with_garbage(self, db, rewrites=3):
        table = db.create_table("T", rows_schema())
        table.insert_many([(k, float(k), f"row{k}") for k in range(120)])
        db.checkpoint()
        for round_no in range(rewrites):
            table.update_rows(
                [
                    (rid, {"score": row[1] + 1.0})
                    for rid, row in table.scan()
                    if row[0] % 2 == round_no % 2
                ]
            )
        return table

    def test_compaction_reclaims_dead_bytes(self, tmp_path):
        with open_compacting(tmp_path / "db", every=0) as db:
            self.fill_with_garbage(db)
            db.checkpoint()
            bloated = db.io_snapshot()
            assert bloated["segment_bytes_dead"] > 0
            assert bloated["compactions_run"] == 0

        with open_compacting(tmp_path / "db") as db:
            db.checkpoint()
            snap = db.io_snapshot()
            assert snap["compactions_run"] == 1
            assert snap["bytes_reclaimed"] > 0
            assert snap["segment_bytes_dead"] == 0
            # The acceptance bound: a compacted segment holds (almost)
            # nothing but live images.
            assert snap["segment_bytes_total"] <= 1.2 * snap["segment_bytes_live"]
            assert snap["segment_bytes_total"] < bloated["segment_bytes_total"]

    def test_compacted_database_recovers_identically(self, tmp_path):
        with open_compacting(tmp_path / "db") as db:
            table = self.fill_with_garbage(db)
            table.create_index("t_tag", ["tag"], kind="hash")
            expected = table_state(db)
            db.checkpoint()
            assert db.backend.compactions_run == 1
            assert table_state(db) == expected  # the rewrite is invisible

        with Database.open(str(tmp_path / "db"), buffer_pool_pages=4) as recovered:
            assert table_state(recovered) == expected
            assert len(recovered.table("T").lookup("t_tag", ("row7",))) == 1
            # And the database keeps working: insert, re-checkpoint, reopen.
            recovered.table("T").insert((1000, 0.0, "late"))
            recovered.checkpoint()
        with Database.open(str(tmp_path / "db")) as again:
            assert again.table("T").get_by_key((1000,)) is not None

    def test_stale_segment_files_are_fenced(self, tmp_path):
        with open_compacting(tmp_path / "db") as db:
            self.fill_with_garbage(db)
            db.checkpoint()
            db.checkpoint()
            epoch = db.backend.segment_epoch
        assert segment_files(tmp_path / "db") == [segment_file_name(epoch)]

    def test_deleted_rows_do_not_resurrect(self, tmp_path):
        with open_compacting(tmp_path / "db") as db:
            table = self.fill_with_garbage(db)
            doomed = [rid for rid, row in table.scan() if row[0] < 30]
            for rid in doomed:
                table.delete_row(rid)
            db.checkpoint()

        with Database.open(str(tmp_path / "db")) as recovered:
            table = recovered.table("T")
            assert len(table) == 90
            for key in range(30):
                assert table.get_by_key((key,)) is None

    def test_truncated_table_pages_are_dropped_from_the_segment(self, tmp_path):
        with open_compacting(tmp_path / "db") as db:
            table = self.fill_with_garbage(db)
            live_before = db.backend.segment_bytes_live
            table.truncate()
            assert db.backend.segment_bytes_live < live_before
            db.checkpoint()
            assert db.io_snapshot()["segment_bytes_dead"] == 0

        with Database.open(str(tmp_path / "db")) as recovered:
            assert len(recovered.table("T")) == 0

    def test_failed_snapshot_publish_does_not_truncate_live_data(self, tmp_path):
        """A checkpoint whose snapshot publish raises a *live-process* error
        (disk full, not a crash) leaves the segment epoch ahead of the
        snapshot epoch; the next compaction must not collide with — and
        'w+b'-truncate — the segment file it is reading from."""
        from repro.minidb.wal import FileOps

        class FlakyOps(FileOps):
            def __init__(self):
                self.fail_next_replace = False

            def replace(self, src, dst):
                if self.fail_next_replace:
                    self.fail_next_replace = False
                    raise OSError("no space left on device")
                super().replace(src, dst)

        ops = FlakyOps()
        db = open_compacting(tmp_path / "db", ops=ops)
        table = self.fill_with_garbage(db)
        expected = table_state(db)
        ops.fail_next_replace = True
        with pytest.raises(OSError, match="no space"):
            db.checkpoint()  # compacted, then failed to publish
        assert table_state(db) == expected  # the failed publish lost nothing
        # The process survives and keeps writing; the new garbage makes
        # the next checkpoint compact *again* — the rewrite target must
        # not collide with the current (unpublished-epoch) segment file.
        table.update_rows([(rid, {"score": -1.0}) for rid, _ in table.scan()])
        expected = table_state(db)
        db.checkpoint()
        assert db.backend.compactions_run >= 1
        assert table_state(db) == expected
        db.close()
        with Database.open(str(tmp_path / "db")) as recovered:
            assert table_state(recovered) == expected

    def test_damaged_live_image_aborts_cleanly(self, tmp_path):
        """A CRC-damaged live frame aborts the rewrite before anything is
        published, without leaking the half-written epoch-stamped file."""
        from repro.minidb.testing import flip_byte

        db = open_compacting(tmp_path / "db")
        self.fill_with_garbage(db)
        # Damage one live image in place (offset of some directory entry).
        entry = next(iter(db.backend._directory.values()))
        db.backend._segments.flush()
        flip_byte(tmp_path / "db" / segment_files(tmp_path / "db")[0], entry[0] + 10)
        before = segment_files(tmp_path / "db")
        with pytest.raises(StorageError, match="corrupt frame"):
            db.checkpoint()
        assert segment_files(tmp_path / "db") == before  # no stray new file
        db.close()

    def test_missing_segment_file_is_refused(self, tmp_path):
        with open_compacting(tmp_path / "db") as db:
            self.fill_with_garbage(db)
            db.checkpoint()
            epoch = db.backend.segment_epoch
        os.remove(tmp_path / "db" / segment_file_name(epoch))
        with pytest.raises(StorageError, match="missing segment file"):
            Database.open(str(tmp_path / "db"))


class TestPolicy:
    def test_low_garbage_ratio_skips_the_rewrite(self, tmp_path):
        with open_compacting(tmp_path / "db", ratio=0.9) as db:
            db.create_table("T", rows_schema()).insert_many(
                [(k, 0.0, "x") for k in range(50)]
            )
            db.checkpoint()
            db.checkpoint()
            assert db.backend.compactions_run == 0
            assert db.backend.segment_epoch == 0

    def test_compact_every_rate_limits_consideration(self):
        compactor = Compactor(compact_every=3, min_garbage_ratio=0.0)
        verdicts = [compactor.due(live_bytes=100, dead_bytes=100) for _ in range(7)]
        assert verdicts == [False, False, True, False, False, True, False]

    def test_zero_disables(self):
        compactor = Compactor(compact_every=0)
        assert not compactor.due(live_bytes=0, dead_bytes=10**9)

    def test_knob_validation(self):
        with pytest.raises(StorageError, match="compact_every"):
            Compactor(compact_every=-1)
        with pytest.raises(StorageError, match="garbage_ratio"):
            Compactor(min_garbage_ratio=1.5)

    def test_empty_segment_is_never_compacted(self):
        compactor = Compactor(compact_every=1, min_garbage_ratio=0.0)
        assert not compactor.due(live_bytes=0, dead_bytes=0)


class TestCrashWalk:
    """Crash at *every* I/O point of a compacting checkpoint and recover."""

    def run_workload(self, path, seed, crash_offset=None):
        """Deterministic (per seed) dirty workload + the checkpoint under test.

        Returns ``(injector, database, expected_state, points)`` where
        *expected_state* is the logical table state the recovery must
        reproduce and *points* the number of I/O ops the tortured
        checkpoint performed (only meaningful on an uncrashed run).
        """
        rng = random.Random(seed)
        injector = FaultInjector()
        db = open_compacting(path, ops=injector)
        table = db.create_table("T", rows_schema())
        table.insert_many([(k, float(k), f"r{k}") for k in range(100)])
        db.checkpoint()  # an earlier, undisturbed checkpoint generation
        rids = [rid for rid, _row in table.scan()]
        for rid in rng.sample(rids, 40):
            table.update_row(rid, {"score": rng.random()})
        for rid in rng.sample(rids, 15):
            table.delete_row(rid)
        table.insert_many([(200 + k, 0.5, "late") for k in range(10)])
        expected = table_state(db)
        start = injector.op_count
        if crash_offset is not None:
            injector.crash_at = start + crash_offset
        crashed = False
        try:
            db.checkpoint()  # the tortured (compacting) checkpoint
        except SimulatedCrash:
            crashed = True
        assert crashed == (crash_offset is not None)
        return injector, db, expected, injector.op_count - start

    @pytest.mark.parametrize("seed", TORTURE_SEEDS)
    def test_recovery_from_every_io_point(self, tmp_path, seed):
        # Dry run: count the checkpoint's I/O points and pin the expected
        # state; the checkpoint must actually have compacted, or the walk
        # would torture the wrong code path.
        injector, db, expected, points = self.run_workload(tmp_path / "dry", seed)
        assert db.backend.compactions_run == 1
        assert table_state(db) == expected
        assert points > 20  # flush + rewrite + snapshot + WAL + fence
        db.close()

        for crash_offset in range(points):
            path = tmp_path / f"crash-{crash_offset}"
            _, crashed_db, expected, _ = self.run_workload(
                path, seed, crash_offset=crash_offset
            )
            hard_close(crashed_db)

            with open_compacting(path, ratio=0.0) as recovered:
                assert table_state(recovered) == expected, (
                    f"seed {seed}: state diverged after crash at I/O point "
                    f"{crash_offset}"
                )
                assert len(segment_files(path)) == 1  # stale files fenced
                # The survivor is fully operational: more writes, another
                # compacting checkpoint, and the garbage is gone again.
                recovered.table("T").insert((500 + crash_offset, 1.0, "post"))
                recovered.checkpoint()
                snap = recovered.io_snapshot()
                assert snap["segment_bytes_total"] <= 1.2 * snap["segment_bytes_live"]


GOOD = "recreation/cycling"
MAX_PAGES = 90
CHECKPOINT_EVERY = 25
FETCH_FAILURE_SEED = 3


def crawl_config():
    return CrawlerConfig(
        max_pages=MAX_PAGES,
        distill_every=30,
        checkpoint_every=CHECKPOINT_EVERY,
        engine="batched",
        batch_size=4,
        # Compact at every checkpoint regardless of garbage: the torture
        # wants the maximum number of compaction windows to crash inside.
        compact_every=1,
        compact_min_garbage_ratio=0.0,
    )


@pytest.fixture(scope="module")
def torture_system(small_web):
    config = FocusConfig(good_topics=(GOOD,), examples_per_leaf=12, seed_count=8)
    system = FocusSystem.from_web(small_web, [GOOD], config)
    system.train()
    return system


@pytest.fixture(scope="module")
def reference_crawl(torture_system):
    """The uninterrupted crawl every crashed-and-resumed run must equal."""
    return torture_system.crawl(
        crawler_config=crawl_config(), fetch_failure_seed=FETCH_FAILURE_SEED
    )


def torture_database(directory, injector):
    """A durable crawl database whose file I/O runs through *injector*."""
    config = crawl_config()
    return create_focus_database(
        buffer_pool_pages=512,
        path=str(directory),
        compact_every=config.compact_every,
        compact_min_garbage_ratio=config.compact_min_garbage_ratio,
        ops=injector,
    )


def durable_crawl(system, directory, database):
    """A checkpointed crawl on an externally built (injected) database."""
    return system.crawl(
        crawler_config=crawl_config(),
        fetch_failure_seed=FETCH_FAILURE_SEED,
        database=database,
        checkpoint_dir=str(directory),
    )


def compaction_crash_points(events):
    """Pick the I/O indexes to torture: a mid-crawl compaction window.

    The window of compaction epoch *e* runs from the first write into
    ``segments.<e>.dat`` to the ``remove`` of the superseded file; it
    spans the rewrite, the snapshot publish, the WAL reset, and the
    fence — every phase of the atomic-swap protocol.  One index per
    distinct operation kind plus the window's first/last write keeps
    each seed affordable while still crossing the commit point.
    """
    epochs = sorted(
        {
            os.path.basename(event.path)
            for event in events
            if os.path.basename(event.path).startswith("segments.")
            and os.path.basename(event.path) != "segments.dat"
        }
    )
    assert len(epochs) >= 3, f"expected several compactions, saw {epochs}"
    target = epochs[len(epochs) // 2]  # a mid-crawl compaction
    start = next(
        e.index for e in events if os.path.basename(e.path) == target
    )
    end = next(
        e.index for e in events if e.index > start and e.kind == "remove"
    )
    window = events[start : end + 1]
    picks = {start, end}
    writes = [e.index for e in window if e.kind == "write"]
    picks.add(writes[len(writes) // 2])
    for kind in ("fsync", "replace", "truncate"):
        first = next((e.index for e in window if e.kind == kind), None)
        if first is not None:
            picks.add(first)
    return sorted(picks)


class TestCrawlTorture:
    """ISSUE 5 acceptance: a crawl killed at any injected I/O point inside
    a compaction recovers and resumes bit-identically."""

    @pytest.mark.parametrize("seed", TORTURE_SEEDS)
    def test_crash_inside_compaction_resumes_bit_identically(
        self, torture_system, reference_crawl, tmp_path, seed
    ):
        # Dry run: enumerate the durable crawl's I/O points undisturbed.
        dry = FaultInjector()
        database = torture_database(tmp_path / "dry", dry)
        result = durable_crawl(torture_system, tmp_path / "dry", database)
        assert result.trace.fetched_urls == reference_crawl.trace.fetched_urls
        assert database.backend.compactions_run >= 3
        database.close()

        rng = random.Random(seed)
        crash_points = compaction_crash_points(dry.events)
        # Seeds beyond the first shift the sampled window writes around.
        if seed:
            lo, hi = min(crash_points), max(crash_points)
            crash_points = sorted({lo, hi, *rng.sample(range(lo, hi + 1), 4)})

        for crash_at in crash_points:
            directory = tmp_path / f"crash-{crash_at}"
            injector = FaultInjector(crash_at=crash_at)
            doomed = torture_database(directory, injector)
            with pytest.raises(SimulatedCrash):
                durable_crawl(torture_system, directory, doomed)
            hard_close(doomed)  # release the dead process's handles, no I/O

            resumed = torture_system.crawl(resume_from=str(directory))
            assert resumed.pages_fetched() == MAX_PAGES
            assert resumed.trace.fetched_urls == reference_crawl.trace.fetched_urls
            assert (
                resumed.trace.relevance_series()
                == reference_crawl.trace.relevance_series()
            )  # bit for bit
            assert resumed.trace.failed_urls == reference_crawl.trace.failed_urls
            assert len(resumed.database.table("CRAWL")) == len(
                reference_crawl.database.table("CRAWL")
            )
            assert len(resumed.database.table("LINK")) == len(
                reference_crawl.database.table("LINK")
            )
            resumed.database.close()

    def test_post_compaction_segment_bound_on_a_real_crawl(
        self, torture_system, tmp_path
    ):
        """The rewrite-heavy acceptance bound: after a compacting crawl the
        segment file is (within 20%) nothing but live pages."""
        database = torture_database(tmp_path / "crawl", FaultInjector())
        result = durable_crawl(torture_system, tmp_path / "crawl", database)
        database.checkpoint(app_state=database.app_state())
        snap = database.io_snapshot()
        assert snap["compactions_run"] >= 3
        assert snap["bytes_reclaimed"] > 0
        assert snap["segment_bytes_total"] <= 1.2 * snap["segment_bytes_live"]
        database.close()
        assert result.pages_fetched() == MAX_PAGES


class TestBackgroundCompactionCrawl:
    """Background (off-pause) compaction under a real durable crawl."""

    def background_config(self):
        from repro.minidb import StorageConfig

        config = crawl_config()
        config.storage = StorageConfig(
            compact_every=1,
            compact_min_garbage_ratio=0.05,
            background_compaction=True,
            compact_wal_bytes=32 * 1024,
        )
        return config

    def test_background_mode_is_trace_identical_and_reclaims(
        self, torture_system, reference_crawl, tmp_path
    ):
        config = self.background_config()
        database = create_focus_database(
            buffer_pool_pages=512,
            path=str(tmp_path / "bg"),
            storage=config.resolve_storage(),
        )
        result = torture_system.crawl(
            crawler_config=config,
            fetch_failure_seed=FETCH_FAILURE_SEED,
            database=database,
            checkpoint_dir=str(tmp_path / "bg"),
        )
        # Moving the rewrite off the pause must not perturb the crawl.
        assert result.trace.fetched_urls == reference_crawl.trace.fetched_urls
        assert (
            result.trace.relevance_series()
            == reference_crawl.trace.relevance_series()
        )
        assert database.backend.compaction_error is None
        assert database.backend.background_compaction
        # The worker races the crawl's checkpoints; if none of them caught
        # an adopted rewrite, drive one to prove the machinery end to end.
        if database.backend.compactions_run == 0:
            database.buffer_pool.flush_all()
            assert database.backend.run_compaction_once(force=True)
            database.checkpoint(app_state=database.app_state())
        snap = database.io_snapshot()
        assert snap["compactions_run"] >= 1
        assert snap["bytes_reclaimed"] > 0

        # Resuming from the checkpoint re-applies the background policy
        # onto the freshly opened backend.
        handle = torture_system.resume(str(tmp_path / "bg"))
        assert handle.database.backend.background_compaction
        assert handle.database.backend.compact_wal_bytes == 32 * 1024
        handle.close()
        database.close()
