"""The interval (pre/post window) index: encoding, queries, durability."""

import pytest

from repro.minidb import Database, INTEGER, IntervalIndex, StorageConfig, make_schema
from repro.minidb.testing import FaultInjector, SimulatedCrash, hard_close


def edge_schema():
    return make_schema(("child", INTEGER, False), ("parent", INTEGER))


def make_tree(database, edges, name="TREE"):
    """Create an edge table carrying an interval index and load *edges*."""
    table = database.create_table(name, edge_schema())
    table.create_index("tree", ["child", "parent"], kind="interval")
    table.insert_many([{"child": c, "parent": p} for c, p in edges])
    return table


#: A small two-level taxonomy: 1 -> (2, 3); 2 -> (4, 5); 3 -> (6,).
TAXONOMY_EDGES = [(1, None), (2, 1), (3, 1), (4, 2), (5, 2), (6, 3)]


@pytest.fixture()
def db():
    return Database(buffer_pool_pages=32)


class TestEncoding:
    def test_windows_nest(self, db):
        index = make_tree(db, TAXONOMY_EDGES).indexes["tree"]
        root = index.window(1)
        for child in (2, 3):
            lo, hi = index.window(child)
            assert root[0] < lo < hi < root[1]
        # Sibling windows are disjoint.
        w2, w3 = index.window(2), index.window(3)
        assert w2[1] < w3[0] or w3[1] < w2[0]

    def test_descendants_are_one_range_scan(self, db):
        index = make_tree(db, TAXONOMY_EDGES).indexes["tree"]
        assert set(index.descendant_ids(1)) == {2, 3, 4, 5, 6}
        assert set(index.descendant_ids(2)) == {4, 5}
        assert index.descendant_ids(2, include_self=True)[0] == 2
        assert index.descendant_ids(4) == []
        assert index.range_scans > 0

    def test_descendant_count_matches_descendant_ids(self, db):
        index = make_tree(db, TAXONOMY_EDGES).indexes["tree"]
        for node in (1, 2, 3, 4):
            assert index.descendant_count(node) == len(index.descendant_ids(node))
        assert index.descendant_count(2, include_self=True) == 3
        assert index.descendant_count(999) == 0

    def test_ancestor_chain_walks_nearest_first(self, db):
        index = make_tree(db, TAXONOMY_EDGES).indexes["tree"]
        assert index.ancestor_ids(4) == [2, 1]
        assert index.ancestor_ids(6) == [3, 1]
        assert index.ancestor_ids(1) == []

    def test_window_shrinking_skips_whole_subtrees(self, db):
        # A wide tree: the walk from the last leaf must skip each earlier
        # sibling's subtree in one jump rather than node by node.
        edges = [(1, None)]
        for s in range(2, 12):
            edges.append((s, 1))
            edges.append((s + 100, s))
        index = make_tree(db, edges).indexes["tree"]
        assert index.ancestor_ids(111) == [11, 1]
        assert index.window_shrink_skips > 0

    def test_is_descendant(self, db):
        index = make_tree(db, TAXONOMY_EDGES).indexes["tree"]
        assert index.is_descendant(4, 1)
        assert index.is_descendant(4, 2)
        assert not index.is_descendant(4, 3)
        assert not index.is_descendant(1, 4)


class TestGraphShapes:
    def test_extra_edges_feed_reachability(self, db):
        # 6 -> 4 is a cross edge: 3's side reaches into 2's subtree.
        edges = TAXONOMY_EDGES + [(4, 6)]
        index = make_tree(db, edges).indexes["tree"]
        assert set(index.descendant_ids(3)) == {6}  # tree shape unchanged
        assert set(index.reachable_ids(3)) == {3, 6, 4}
        assert set(index.reachable_ids(1)) == {1, 2, 3, 4, 5, 6}
        assert index.extra_edge_count() == 1

    def test_cycles_terminate(self, db):
        edges = [(1, None), (2, 1), (3, 2), (1, 3)]  # 3 -> 1 closes a cycle
        index = make_tree(db, edges).indexes["tree"]
        assert set(index.reachable_ids(1)) == {1, 2, 3}
        assert set(index.reachable_ids(3)) == {3, 1, 2}

    def test_synthetic_root_is_adopted_by_first_real_in_edge(self, db):
        # 5 appears first as a parent (a seed), later gains an in-edge.
        edges = [(6, 5), (1, None), (5, 1)]
        index = make_tree(db, edges).indexes["tree"]
        assert set(index.descendant_ids(1)) == {5, 6}
        assert index.ancestor_ids(6) == [5, 1]

    def test_multi_parent_keeps_first_edge_as_tree_edge(self, db):
        edges = [(1, None), (2, 1), (3, 1), (4, 2), (4, 3)]
        index = make_tree(db, edges).indexes["tree"]
        assert set(index.descendant_ids(2)) == {4}
        assert set(index.descendant_ids(3)) == set()
        assert set(index.reachable_ids(3)) == {3, 4}


class TestMaintenance:
    def test_incremental_batches_rarely_renumber(self, db):
        table = db.create_table("TREE", edge_schema())
        table.create_index("tree", ["child", "parent"], kind="interval")
        index = table.indexes["tree"]
        table.insert({"child": 1, "parent": None})
        assert set(index.descendant_ids(1)) == set()
        # Folding later batches extends the numbering without a rebuild.
        table.insert_many([{"child": c, "parent": 1} for c in range(2, 30)])
        assert len(index.descendant_ids(1)) == 28
        table.insert_many([{"child": c + 100, "parent": c} for c in range(2, 30)])
        assert len(index.descendant_ids(1)) == 56
        # Gap-based allocation absorbs the batches with at most a stray
        # renumber (each sibling halves the parent gap), never one per row.
        assert index.renumbers <= 2

    def test_gap_exhaustion_triggers_full_renumber(self, db):
        table = make_tree(db, [(1, None)])
        index = table.indexes["tree"]
        # A deep chain halves the parent gap at every level; it must
        # eventually renumber rather than run out of integers.
        node = 1
        for depth in range(2, 60):
            table.insert({"child": depth, "parent": node})
            node = depth
        assert index.descendant_count(1) == 58
        assert index.ancestor_ids(node)[-1] == 1
        assert index.renumbers > 0

    def test_delete_replays_surviving_edges(self, db):
        table = make_tree(db, TAXONOMY_EDGES)
        index = table.indexes["tree"]
        assert set(index.descendant_ids(2)) == {4, 5}
        # Remove the 4 -> 2 edge: 4 leaves the subtree entirely.
        deleted = [
            rid
            for rid, row in table.scan()
            if table.schema.row_to_mapping(row)["child"] == 4
        ]
        for rid in deleted:
            table.delete_row(rid)
        assert set(index.descendant_ids(2)) == {5}
        assert 4 not in set(index.reachable_ids(1))
        assert index.deletions > 0

    def test_clear_resets_inl_safety_counter(self, db):
        table = make_tree(db, TAXONOMY_EDGES)
        index = table.indexes["tree"]
        rid = next(iter(table.scan()))[0]
        table.delete_row(rid)
        assert index.deletions == 1
        table.rebuild_indexes()
        assert index.deletions == 0
        assert isinstance(index, IntervalIndex)


class TestDurability:
    def queries(self, database, name="TREE"):
        index = database.table(name).indexes["tree"]
        return (
            index.descendant_ids(1, include_self=True),
            index.reachable_ids(1),
            index.ancestor_ids(4),
        )

    def test_checkpoint_resume_preserves_graph_answers(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        make_tree(db, TAXONOMY_EDGES + [(4, 6)])
        expected = self.queries(db)
        db.checkpoint()
        db.close()

        recovered = Database.open(str(tmp_path / "db"))
        assert self.queries(recovered) == expected
        recovered.close()

    def test_wal_only_recovery_preserves_graph_answers(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        make_tree(db, TAXONOMY_EDGES)
        expected = self.queries(db)
        db.close()  # no checkpoint: recovery replays the WAL, index and all

        recovered = Database.open(str(tmp_path / "db"))
        assert self.queries(recovered) == expected
        recovered.close()

    def test_crash_walk_through_checkpoint(self, tmp_path):
        """Crash at each early I/O point of a checkpoint; recovery must agree."""
        baseline = Database(buffer_pool_pages=32)
        make_tree(baseline, TAXONOMY_EDGES + [(4, 6)])
        expected = self.queries(baseline)

        for crash_at in range(0, 12, 3):
            injector = FaultInjector()
            path = str(tmp_path / f"db-{crash_at}")
            db = Database.open(path, storage=StorageConfig(ops=injector))
            make_tree(db, TAXONOMY_EDGES + [(4, 6)])
            injector.crash_at = injector.op_count + crash_at
            try:
                db.checkpoint()
            except SimulatedCrash:
                pass
            hard_close(db)

            recovered = Database.open(path)
            assert self.queries(recovered) == expected, f"crash at +{crash_at}"
            recovered.close()

    def test_compaction_rebuild_preserves_graph_answers(self, tmp_path):
        storage = StorageConfig(compact_every=1, compact_min_garbage_ratio=0.0)
        db = Database.open(str(tmp_path / "db"), storage=storage)
        table = make_tree(db, TAXONOMY_EDGES + [(4, 6), (7, 4)])
        # Churn: delete the 7 -> 4 leaf so compaction has garbage to drop
        # and the index has processed a real delete.
        for rid, row in list(table.scan()):
            if table.schema.row_to_mapping(row)["child"] == 7:
                table.delete_row(rid)
        expected = self.queries(db)
        db.checkpoint()  # compacts (ratio floor 0) and rebuilds indexes
        assert self.queries(db) == expected
        db.close()

        recovered = Database.open(str(tmp_path / "db"), storage=storage)
        assert self.queries(recovered) == expected
        recovered.close()
