"""Unit tests for relational operators and the fluent query builder."""

import pytest

from repro.minidb import Aggregate, Database, FLOAT, INTEGER, QueryError, col, lit, make_schema
from repro.minidb.operators import (
    Distinct,
    Filter,
    GroupByAggregate,
    HashJoin,
    IndexLookup,
    LeftOuterJoin,
    Limit,
    NestedLoopJoin,
    Project,
    RowSource,
    Sort,
    SortMergeJoin,
    TableScan,
)


@pytest.fixture()
def db():
    database = Database(buffer_pool_pages=64)
    crawl = database.create_table(
        "CRAWL",
        make_schema(
            ("oid", INTEGER, False),
            ("sid", INTEGER),
            ("relevance", FLOAT),
            primary_key=["oid"],
        ),
    )
    link = database.create_table(
        "LINK",
        make_schema(("oid_src", INTEGER), ("oid_dst", INTEGER), ("wgt", FLOAT)),
    )
    for i in range(20):
        crawl.insert({"oid": i, "sid": i % 4, "relevance": (i % 10) / 10})
    for i in range(19):
        link.insert({"oid_src": i, "oid_dst": i + 1, "wgt": 0.5})
    link.insert({"oid_src": 0, "oid_dst": 999, "wgt": 0.1})  # dangling edge
    return database


class TestBasicOperators:
    def test_table_scan_qualifies_columns(self, db):
        rows = TableScan(db.table("CRAWL"), "C").to_list()
        assert len(rows) == 20
        assert rows[0]["C.oid"] == rows[0]["oid"]

    def test_filter_and_project(self, db):
        plan = Project(
            Filter(TableScan(db.table("CRAWL")), col("relevance") > lit(0.8)),
            [("oid", col("oid")), ("double", col("relevance") * lit(2))],
        )
        rows = plan.to_list()
        assert all(set(r) == {"oid", "double"} for r in rows)
        assert all(r["double"] > 1.6 for r in rows)

    def test_sort_orders_and_nulls_last(self):
        source = RowSource([{"x": 3}, {"x": None}, {"x": 1}])
        rows = Sort(source, [(col("x"), True)]).to_list()
        assert [r["x"] for r in rows] == [1, 3, None]

    def test_limit_and_offset(self, db):
        rows = Limit(TableScan(db.table("CRAWL")), limit=5, offset=10).to_list()
        assert len(rows) == 5
        with pytest.raises(QueryError):
            Limit(TableScan(db.table("CRAWL")), limit=-1)

    def test_distinct(self):
        source = RowSource([{"a": 1}, {"a": 1}, {"a": 2}])
        assert len(Distinct(source).to_list()) == 2

    def test_index_lookup(self, db):
        rows = IndexLookup(db.table("CRAWL"), "CRAWL_pk", (7,)).to_list()
        assert len(rows) == 1 and rows[0]["oid"] == 7

    def test_rows_out_counter(self, db):
        scan = TableScan(db.table("CRAWL"))
        scan.to_list()
        assert scan.rows_out == 20


class TestJoins:
    def join_inputs(self, db):
        left = TableScan(db.table("LINK"), "LINK")
        right = TableScan(db.table("CRAWL"), "CRAWL")
        return left, right

    def test_hash_join_matches_nested_loop(self, db):
        hash_rows = HashJoin(
            TableScan(db.table("LINK"), "LINK"),
            TableScan(db.table("CRAWL"), "CRAWL"),
            [col("oid_dst")],
            [col("CRAWL.oid")],
        ).to_list()
        nested_rows = NestedLoopJoin(
            TableScan(db.table("LINK"), "LINK"),
            TableScan(db.table("CRAWL"), "CRAWL"),
            col("oid_dst") == col("CRAWL.oid"),
        ).to_list()
        assert len(hash_rows) == len(nested_rows) == 19

    def test_sort_merge_join_matches_hash_join(self, db):
        merge_rows = SortMergeJoin(
            TableScan(db.table("LINK"), "LINK"),
            TableScan(db.table("CRAWL"), "CRAWL"),
            [col("oid_dst")],
            [col("CRAWL.oid")],
        ).to_list()
        assert len(merge_rows) == 19
        key_pairs = {(r["oid_src"], r["CRAWL.oid"]) for r in merge_rows}
        assert (0, 1) in key_pairs

    def test_left_outer_join_null_fills_unmatched(self, db):
        rows = LeftOuterJoin(
            TableScan(db.table("LINK"), "LINK"),
            TableScan(db.table("CRAWL"), "CRAWL"),
            [col("oid_dst")],
            [col("CRAWL.oid")],
            right_columns=["CRAWL.relevance"],
        ).to_list()
        assert len(rows) == 20
        dangling = [r for r in rows if r["oid_dst"] == 999]
        assert dangling and dangling[0]["CRAWL.relevance"] is None

    def test_join_key_arity_checked(self, db):
        with pytest.raises(QueryError):
            HashJoin(RowSource([]), RowSource([]), [col("a")], [])


class TestAggregation:
    def test_group_by_sum_count_avg_min_max(self, db):
        plan = GroupByAggregate(
            TableScan(db.table("CRAWL")),
            [("sid", col("sid"))],
            [
                Aggregate("count", None, "n"),
                Aggregate("sum", col("relevance"), "total"),
                Aggregate("avg", col("relevance"), "mean"),
                Aggregate("min", col("relevance"), "low"),
                Aggregate("max", col("relevance"), "high"),
            ],
        )
        rows = {r["sid"]: r for r in plan.to_list()}
        assert set(rows) == {0, 1, 2, 3}
        assert rows[0]["n"] == 5
        assert rows[0]["low"] <= rows[0]["mean"] <= rows[0]["high"]
        assert abs(rows[0]["mean"] - rows[0]["total"] / rows[0]["n"]) < 1e-12

    def test_global_aggregate_over_empty_input(self):
        plan = GroupByAggregate(RowSource([]), [], [Aggregate("count", None, "n")])
        assert plan.to_list() == [{"n": 0}]

    def test_having_filters_groups(self, db):
        plan = GroupByAggregate(
            TableScan(db.table("CRAWL")),
            [("sid", col("sid"))],
            [Aggregate("count", None, "n")],
            having=col("sid") > lit(1),
        )
        assert {r["sid"] for r in plan.to_list()} == {2, 3}

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            Aggregate("median", col("x"), "m")

    def test_sum_over_empty_group_is_null(self):
        plan = GroupByAggregate(RowSource([]), [], [Aggregate("sum", col("x"), "s")])
        assert plan.to_list() == [{"s": None}]


class TestQueryBuilder:
    def test_where_group_order_limit(self, db):
        rows = (
            db.query("CRAWL")
            .where(col("relevance") > lit(0.2))
            .group_by("sid")
            .aggregate("count", None, "n")
            .order_by(("n", False), ("sid", True))
            .limit(2)
            .run()
        )
        assert len(rows) == 2
        assert rows[0]["n"] >= rows[1]["n"]

    def test_point_query_uses_primary_key_index(self, db):
        query = db.query("CRAWL").where(col("oid") == lit(3))
        plan = query.plan()
        # The base of the plan should be an IndexLookup, not a scan.
        node = plan
        while hasattr(node, "child"):
            node = node.child
        assert isinstance(node, IndexLookup)
        assert query.run()[0]["oid"] == 3

    def test_join_through_builder(self, db):
        rows = (
            db.query("LINK")
            .join("CRAWL", on=[("oid_dst", "oid")])
            .where(col("relevance") > lit(0.5))
            .select("oid_src", "oid_dst", "relevance")
            .run()
        )
        assert rows and all(r["relevance"] > 0.5 for r in rows)

    def test_left_join_through_builder(self, db):
        rows = (
            db.query("LINK")
            .join("CRAWL", on=[("oid_dst", "oid")], how="left")
            .run()
        )
        assert len(rows) == 20

    def test_merge_join_algorithm(self, db):
        rows = (
            db.query("LINK")
            .join("CRAWL", on=[("oid_dst", "oid")], algorithm="merge")
            .run()
        )
        assert len(rows) == 19

    def test_scalar_and_errors(self, db):
        assert db.query("CRAWL").aggregate("count", None, "n").scalar() == 20
        with pytest.raises(QueryError):
            db.query("CRAWL").select("oid", "sid").scalar()
        with pytest.raises(QueryError):
            db.query("CRAWL").join("LINK", on=[("oid", "oid_src")], how="full")

    def test_query_over_row_source(self, db):
        rows = (
            db.query([{"k": 1}, {"k": 2}, {"k": 2}], alias="R")
            .distinct()
            .order_by(("k", True))
            .run()
        )
        assert [r["k"] for r in rows] == [1, 2]
