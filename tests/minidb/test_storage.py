"""Unit tests for slotted pages, heap files, and record ids."""

import os

import pytest

from repro.minidb import Database, INTEGER, TEXT, StorageError, make_schema
from repro.minidb.backend import SEGMENT_FILE
from repro.minidb.buffer_pool import BufferPool
from repro.minidb.pages import Page, PageId, RecordId
from repro.minidb.storage import HeapFile
from repro.minidb.wal import SEGMENT_MAGIC


def make_heap(page_size=512, pool_pages=8):
    schema = make_schema(("k", INTEGER, False), ("payload", TEXT))
    pool = BufferPool(pool_pages)
    return HeapFile(file_id=0, schema=schema, buffer_pool=pool, page_size=page_size), schema, pool


class TestPage:
    def test_insert_read_update_delete(self):
        page = Page(PageId(0, 0), capacity=256)
        slot = page.insert((1, "a"), 16)
        assert page.read(slot) == (1, "a")
        page.update(slot, (1, "b"), old_size=16, new_size=16)
        assert page.read(slot) == (1, "b")
        page.delete(slot, 16)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_fits_respects_capacity(self):
        page = Page(PageId(0, 0), capacity=64)
        assert page.fits(8)
        assert not page.fits(1000)
        with pytest.raises(StorageError):
            page.insert((1,), 1000)

    def test_deleted_slot_is_reused(self):
        page = Page(PageId(0, 0), capacity=4096)
        first = page.insert((1,), 8)
        page.insert((2,), 8)
        page.delete(first, 8)
        reused = page.insert((3,), 8)
        assert reused == first
        assert page.live_count() == 2

    def test_out_of_range_slot(self):
        page = Page(PageId(0, 0))
        with pytest.raises(StorageError):
            page.read(5)


class TestHeapFile:
    def test_insert_and_read(self):
        heap, schema, _ = make_heap()
        rid = heap.insert(schema.validate_row((1, "hello")))
        assert heap.read(rid) == (1, "hello")
        assert heap.row_count == 1

    def test_rows_spill_to_new_pages(self):
        heap, schema, _ = make_heap(page_size=256)
        for i in range(50):
            heap.insert(schema.validate_row((i, "x" * 20)))
        assert heap.page_count > 1
        assert heap.row_count == 50
        assert sorted(row[0] for row in heap.scan_rows()) == list(range(50))

    def test_update_and_delete(self):
        heap, schema, _ = make_heap()
        rid = heap.insert(schema.validate_row((1, "a")))
        heap.update(rid, schema.validate_row((1, "bb")))
        assert heap.read(rid) == (1, "bb")
        deleted = heap.delete(rid)
        assert deleted == (1, "bb")
        assert heap.row_count == 0
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_rid_stability_across_other_deletes(self):
        heap, schema, _ = make_heap()
        rids = [heap.insert(schema.validate_row((i, "p"))) for i in range(10)]
        heap.delete(rids[0])
        heap.delete(rids[5])
        assert heap.read(rids[7]) == (7, "p")

    def test_foreign_rid_rejected(self):
        heap, schema, _ = make_heap()
        heap.insert(schema.validate_row((1, "a")))
        foreign = RecordId(PageId(file_id=99, page_no=0), 0)
        with pytest.raises(StorageError):
            heap.read(foreign)

    def test_oversized_row_rejected(self):
        heap, schema, _ = make_heap(page_size=128)
        with pytest.raises(StorageError):
            heap.insert(schema.validate_row((1, "y" * 500)))

    def test_truncate_clears_everything(self):
        heap, schema, _ = make_heap()
        for i in range(20):
            heap.insert(schema.validate_row((i, "z")))
        heap.truncate()
        assert heap.row_count == 0
        assert heap.page_count == 0
        assert list(heap.scan()) == []

    def test_scan_yields_rid_row_pairs(self):
        heap, schema, _ = make_heap()
        rid = heap.insert(schema.validate_row((3, "q")))
        pairs = list(heap.scan())
        assert pairs == [(rid, (3, "q"))]


class TestSegmentAccounting:
    """The segment-file size baseline behind the compactor's live/dead split."""

    def test_io_snapshot_reports_segment_bytes_total(self, tmp_path):
        schema = make_schema(("k", INTEGER, False), ("payload", TEXT))
        with Database.open(
            tmp_path / "db", buffer_pool_pages=2, page_size=512, compact_every=0
        ) as db:
            table = db.create_table("T", schema)
            for i in range(200):  # spill through the 2-frame pool
                table.insert((i, "x" * 20))
            # Rewrites supersede earlier page images: dead bytes appear.
            table.update_rows([(rid, {"payload": "y" * 20}) for rid, _ in table.scan()])
            db.checkpoint()
            snap = db.io_snapshot()
            assert snap["segment_bytes_total"] > 0
            # Total is exactly what is on disk (minus the magic header)...
            on_disk = os.path.getsize(tmp_path / "db" / SEGMENT_FILE)
            assert snap["segment_bytes_total"] == on_disk - len(SEGMENT_MAGIC)
            # ... and decomposes into the live/dead split.
            assert (
                snap["segment_bytes_total"]
                == snap["segment_bytes_live"] + snap["segment_bytes_dead"]
            )
            # The eviction churn re-wrote pages, so some bytes are dead.
            assert snap["segment_bytes_dead"] > 0

    def test_memory_database_reports_zero_segment_bytes(self):
        snap = Database().io_snapshot()
        assert snap["segment_bytes_total"] == 0.0
        assert snap["segment_bytes_live"] == 0.0
        assert snap["segment_bytes_dead"] == 0.0
        assert snap["compactions_run"] == 0.0
        assert snap["bytes_reclaimed"] == 0.0
