"""The fault-injection I/O layer itself: counting, crashing, corrupting.

These are the unit tests of the instrument; the property suites in
``test_compaction.py`` are what the instrument is *for*.
"""

import os

import pytest

from repro.minidb import Database, FLOAT, INTEGER, make_schema
from repro.minidb.backend import SEGMENT_FILE, WAL_FILE
from repro.minidb.testing import (
    FaultInjector,
    SimulatedCrash,
    flip_byte,
    hard_close,
    truncate_tail,
)
from repro.minidb.wal import WriteAheadLog


def simple_schema():
    return make_schema(("k", INTEGER, False), ("v", FLOAT), primary_key=["k"])


class TestCounting:
    def test_wal_appends_are_counted_writes(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.dat", ops=injector)
        created = injector.op_count  # header: truncate + magic + epoch
        assert [e.kind for e in injector.events[:3]] == ["truncate", "write", "write"]
        wal.append(("insert", "T", [(1,)]))
        # One frame is two writes: header then payload.
        assert injector.op_count == created + 2
        wal.sync()
        assert injector.events[-1].kind == "fsync"
        wal.close()

    def test_event_paths_name_the_files(self, tmp_path):
        injector = FaultInjector()
        db = Database.open(str(tmp_path / "db"), ops=injector)
        table = db.create_table("T", simple_schema())
        table.insert((1, 1.0))
        db.checkpoint()
        touched = {os.path.basename(event.path) for event in injector.events}
        assert WAL_FILE in touched
        assert SEGMENT_FILE in touched
        assert any(name.startswith("snapshot.dat") for name in touched)
        db.close()

    def test_replace_and_remove_are_counted(self, tmp_path):
        injector = FaultInjector()
        victim = tmp_path / "a"
        victim.write_bytes(b"x")
        injector.replace(victim, tmp_path / "b")
        injector.remove(tmp_path / "b")
        assert [e.kind for e in injector.events] == ["replace", "remove"]
        assert not (tmp_path / "a").exists() and not (tmp_path / "b").exists()


class TestCrashing:
    def test_crash_at_write_tears_the_frame(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.dat", ops=injector)
        wal.append(("insert", "T", [(1,)]))
        size_before = os.path.getsize(tmp_path / "wal.dat")
        # Crash at the *payload* write of the next frame: the header and
        # half the payload reach the file — a torn tail.
        injector.crash_at = injector.op_count + 1
        with pytest.raises(SimulatedCrash):
            wal.append(("insert", "T", [(2,)]))
        torn_size = os.path.getsize(tmp_path / "wal.dat")
        assert size_before + 8 < torn_size  # header plus a partial payload
        wal._fh.close()

        reopened = WriteAheadLog(tmp_path / "wal.dat")
        assert reopened.replay() == [("insert", "T", [(1,)])]
        reopened.close()

    def test_partial_writes_can_be_disabled(self, tmp_path):
        injector = FaultInjector(partial_writes=False)
        wal = WriteAheadLog(tmp_path / "wal.dat", ops=injector)
        size_before = os.path.getsize(tmp_path / "wal.dat")
        injector.crash_at = injector.op_count  # the next header write
        with pytest.raises(SimulatedCrash):
            wal.append(("insert", "T", [(1,)]))
        assert os.path.getsize(tmp_path / "wal.dat") == size_before
        wal._fh.close()

    def test_dead_process_refuses_further_io(self, tmp_path):
        injector = FaultInjector()
        wal = WriteAheadLog(tmp_path / "wal.dat", ops=injector)
        injector.crash_at = injector.op_count
        with pytest.raises(SimulatedCrash):
            wal.append(("insert", "T", [(1,)]))
        assert injector.crashed
        # Anything after the crash is I/O a dead process cannot perform.
        with pytest.raises(SimulatedCrash):
            wal.sync()
        with pytest.raises(SimulatedCrash):
            wal.append(("insert", "T", [(2,)]))
        wal._fh.close()

    def test_crash_inside_checkpoint_then_hard_close(self, tmp_path):
        injector = FaultInjector()
        db = Database.open(str(tmp_path / "db"), ops=injector)
        table = db.create_table("T", simple_schema())
        table.insert_many([(k, float(k)) for k in range(10)])
        injector.crash_at = injector.op_count + 3
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        hard_close(db)
        assert db.backend._segments.closed
        assert db.backend.wal._fh.closed

        recovered = Database.open(str(tmp_path / "db"))
        assert sorted(row[0] for row in recovered.table("T").rows()) == list(range(10))
        recovered.close()


class TestConstructorCrash:
    def test_crash_during_wal_creation_is_survivable(self, tmp_path):
        """Even the very first header write is a legal kill point."""
        for index in range(3):  # truncate, magic write, epoch write
            target = tmp_path / f"wal-{index}.dat"
            injector = FaultInjector(crash_at=index)
            with pytest.raises(SimulatedCrash):
                WriteAheadLog(target, ops=injector)
            reopened = WriteAheadLog(target)
            assert reopened.epoch == 0
            assert reopened.replay() == []
            reopened.close()


class TestCorruptionHelpers:
    def test_truncate_tail(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"0123456789")
        truncate_tail(target, 4)
        assert target.read_bytes() == b"012345"
        truncate_tail(target, 100)  # clamps at zero
        assert target.read_bytes() == b""

    def test_flip_byte(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"\x00\x00\x00")
        flip_byte(target, 1)
        assert target.read_bytes() == b"\x00\xff\x00"
        flip_byte(target, 1)  # involutive: flipping back restores
        assert target.read_bytes() == b"\x00\x00\x00"
        with pytest.raises(ValueError, match="past the end"):
            flip_byte(target, 17)

    def test_hard_close_is_a_noop_for_memory_databases(self):
        hard_close(Database())
