"""Durable storage: snapshot + WAL recovery, eviction flushes, I/O counters."""

import os

import pytest

from repro.minidb import (
    Database,
    FLOAT,
    INTEGER,
    TEXT,
    make_schema,
)
from repro.minidb.backend import WAL_FILE
from repro.minidb.errors import ConstraintError, StorageError
from repro.minidb.testing import truncate_tail


def people_schema():
    return make_schema(
        ("oid", INTEGER, False),
        ("score", FLOAT),
        ("name", TEXT),
        primary_key=["oid"],
    )


def fill(table, start, count, tag="row"):
    return table.insert_many(
        [(oid, oid * 0.25, f"{tag}{oid}") for oid in range(start, start + count)]
    )


class TestRecovery:
    def test_wal_only_recovery_without_checkpoint(self, tmp_path):
        """A database that never checkpointed recovers everything from the log."""
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            table.create_index("p_name", ["name"], kind="hash")
            rids = fill(table, 0, 120)
            table.update_row(rids[3], {"score": 9.0})
            table.delete_row(rids[4])

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("P")
            assert len(table) == 119
            assert table.get_by_key((3,))[1] == 9.0
            assert table.get_by_key((4,)) is None
            assert len(table.lookup("p_name", ("row7",))) == 1

    def test_snapshot_plus_wal_delta(self, tmp_path):
        """Post-checkpoint writes replay over the snapshot, not over nothing."""
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 100)
            db.checkpoint()
            wal_before = os.path.getsize(tmp_path / "db" / WAL_FILE)
            fill(table, 100, 25, tag="late")
            table.update_rows([(rid, {"score": -1.0}) for rid in table.lookup_rids("P_pk", (0,))])
            assert os.path.getsize(tmp_path / "db" / WAL_FILE) > wal_before

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("P")
            assert len(table) == 125
            assert table.get_by_key((0,))[1] == -1.0
            assert table.get_by_key((110,))[2] == "late110"

    def test_record_ids_stable_across_recovery(self, tmp_path):
        """Replayed inserts land on the same pages/slots, so saved rids stay valid."""
        with Database.open(tmp_path / "db") as db:
            rids = fill(db.create_table("P", people_schema()), 0, 80)
            saved = [(r.page_id.file_id, r.page_id.page_no, r.slot) for r in rids]

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("P")
            recovered_rids = [rid for rid, _row in table.scan()]
            assert [(r.page_id.file_id, r.page_id.page_no, r.slot) for r in recovered_rids] == saved
            # And the heap keeps appending exactly where it left off.
            more = fill(table, 80, 1)
            assert more[0].page_id.page_no >= recovered_rids[-1].page_id.page_no

    def test_truncate_and_reinsert_replay(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("SCORES", people_schema())
            fill(table, 0, 30)
            table.truncate()
            fill(table, 1000, 5, tag="fresh")

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("SCORES")
            assert len(table) == 5
            assert table.get_by_key((1000,)) is not None
            assert table.get_by_key((0,)) is None

    def test_ddl_replay_and_constraints_survive(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 10)
            db.create_table("OTHER", make_schema(("k", INTEGER, False)))
            db.drop_table("OTHER")

        with Database.open(tmp_path / "db") as recovered:
            assert recovered.table_names() == ["P"]
            with pytest.raises(ConstraintError):
                recovered.table("P").insert((3, 0.0, "dup"))

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            fill(db.create_table("P", people_schema()), 0, 50)

        truncate_tail(tmp_path / "db" / WAL_FILE, 5)

        with Database.open(tmp_path / "db") as recovered:
            # The single bulk insert was the torn record: nothing to replay,
            # but the catalog (logged earlier) is intact.
            table = recovered.table("P")
            assert len(table) == 0
            fill(table, 0, 3)
            assert len(table) == 3

    def test_torn_wal_header_recovers_the_snapshot(self, tmp_path):
        """A kill inside the checkpoint's WAL reset can leave an empty
        wal.dat; the snapshot already holds everything, so the reopen must
        recover rather than refuse."""
        with Database.open(tmp_path / "db") as db:
            fill(db.create_table("P", people_schema()), 0, 60)
            db.checkpoint()

        wal_path = tmp_path / "db" / WAL_FILE
        truncate_tail(wal_path, os.path.getsize(wal_path))

        with Database.open(tmp_path / "db") as recovered:
            assert len(recovered.table("P")) == 60

    def test_replay_wal_false_pins_to_snapshot(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 40)
            db.checkpoint()
            fill(table, 40, 40)

        with Database.open(tmp_path / "db", replay_wal=False) as pinned:
            assert len(pinned.table("P")) == 40
        # The discarded tail stays discarded on the next (replaying) open.
        with Database.open(tmp_path / "db") as again:
            assert len(again.table("P")) == 40

    def test_pre_compaction_snapshot_format_still_opens(self, tmp_path):
        """PR-2-era snapshots store bare offsets (no frame lengths, no
        segment epoch); the opener recovers the lengths from the frame
        headers so an in-place upgrade needs no migration step."""
        from repro.minidb.backend import SNAPSHOT_FILE
        from repro.minidb.wal import dump_record, load_record, read_frame_at, write_frame

        with Database.open(tmp_path / "db") as db:
            fill(db.create_table("P", people_schema()), 0, 80)
            db.checkpoint()

        snapshot_path = tmp_path / "db" / SNAPSHOT_FILE
        with open(snapshot_path, "rb") as fh:
            meta = load_record(read_frame_at(fh, 0))
        meta.pop("segment_epoch")
        meta["directory"] = {
            key: offset for key, (offset, _length) in meta["directory"].items()
        }
        with open(snapshot_path, "wb") as fh:
            write_frame(fh, dump_record(meta))

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("P")
            assert len(table) == 80
            assert table.get_by_key((42,))[2] == "row42"
            # And the recovered sizes feed the live/dead accounting.
            assert recovered.io_snapshot()["segment_bytes_live"] > 0

    def test_app_state_rides_the_snapshot(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            db.create_table("P", people_schema())
            assert db.app_state() is None
            db.checkpoint(app_state={"round": 7, "note": "mid-crawl"})

        with Database.open(tmp_path / "db") as recovered:
            assert recovered.app_state() == {"round": 7, "note": "mid-crawl"}


class TestEvictionAndCounters:
    def test_evicted_pages_round_trip_through_segments(self, tmp_path):
        with Database.open(tmp_path / "db", buffer_pool_pages=2) as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 400)  # many pages through a 2-frame pool
            assert db.stats.evictions > 0
            # Every row is readable back through segment-file loads.
            assert sorted(row[0] for row in table.rows()) == list(range(400))
            snap = db.io_snapshot()
            assert snap["pages_flushed"] > 0
            assert snap["wal_bytes_written"] > 0

    def test_page_accounting_does_not_double_count_resident_pages(self, tmp_path):
        """Loading a page leaves its durable image in the directory; the
        pool must not count it as both resident and on disk."""
        with Database.open(tmp_path / "db", buffer_pool_pages=2) as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 400)
            list(table.rows())  # cycle every page back through the pool
            heap_pages = table.page_count
            assert db.buffer_pool.total_pages() == heap_pages
            assert db.buffer_pool.disk_pages == heap_pages - db.buffer_pool.resident_pages

    def test_memory_database_reports_zero_durability_counters(self):
        db = Database(buffer_pool_pages=8)
        table = db.create_table("P", people_schema())
        fill(table, 0, 50)
        snap = db.io_snapshot()
        assert snap["wal_bytes_written"] == 0.0
        assert snap["pages_flushed"] == 0.0

    def test_memory_database_cannot_checkpoint(self):
        db = Database()
        with pytest.raises(StorageError, match="in-memory"):
            db.checkpoint()

    def test_checkpoint_trims_recovery_to_the_delta(self, tmp_path):
        """After a checkpoint the WAL holds only post-checkpoint work."""
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            fill(table, 0, 200)
            db.checkpoint()

        wal_size = os.path.getsize(tmp_path / "db" / WAL_FILE)
        with Database.open(tmp_path / "db") as recovered:
            fill(recovered.table("P"), 200, 1)
        # One replayed... none: open replays an (empty) WAL then appends one
        # insert record; the file stayed near its post-reset size.
        assert os.path.getsize(tmp_path / "db" / WAL_FILE) < wal_size + 4096

    def test_indexes_rebuilt_from_one_scan_after_recovery(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            table = db.create_table("P", people_schema())
            table.create_index("p_name", ["name"], kind="hash")
            table.create_index("p_score", ["score"], kind="ordered")
            fill(table, 0, 150)
            db.checkpoint()

        with Database.open(tmp_path / "db") as recovered:
            table = recovered.table("P")
            assert set(table.indexes) == {"p_name", "p_score"}
            assert len(table.lookup("p_name", ("row42",))) == 1
            hits = list(table.indexes["p_score"].range_search(low=(0.0,), high=(1.0,)))
            assert len(hits) == 5  # scores 0.0, 0.25, 0.5, 0.75, 1.0
