"""Write-ahead log framing: round trips, torn tails, and epoch fencing."""

import pytest

from repro.minidb.errors import StorageError
from repro.minidb.testing import FaultInjector, SimulatedCrash, flip_byte, truncate_tail
from repro.minidb.wal import (
    WAL_HEADER_SIZE,
    WriteAheadLog,
    dump_record,
    read_frame_at,
    scan_frames,
    write_frame,
)

RECORDS = [
    ("insert", "CRAWL", [(1, "http://a", 0.5)]),
    ("update", "CRAWL", [((0, 0), {"relevance": 0.25})]),
    ("delete", "LINK", [(0, 3)]),
    ("truncate", "HUBS"),
]


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat")
        for record in RECORDS:
            wal.append(record)
        assert wal.records_written == len(RECORDS)
        assert wal.bytes_written > 0
        wal.close()

        reopened = WriteAheadLog(tmp_path / "wal.dat")
        assert reopened.replay() == RECORDS
        reopened.close()

    def test_replay_is_repeatable(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat")
        for record in RECORDS:
            wal.append(record)
        assert wal.replay() == RECORDS
        assert wal.replay() == RECORDS  # replay does not consume
        wal.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.dat"
        wal = WriteAheadLog(path)
        for record in RECORDS:
            wal.append(record)
        wal.close()

        # Chop the file mid-way through the last record's payload — the
        # torn tail a crash during append leaves behind.
        truncate_tail(path, 3)

        reopened = WriteAheadLog(path)
        assert reopened.replay() == RECORDS[:-1]
        # The tail was cut off, so appends go to a clean end of file.
        reopened.append(("truncate", "AUTH"))
        assert reopened.replay() == RECORDS[:-1] + [("truncate", "AUTH")]
        reopened.close()

    def test_corrupt_record_marks_the_tail(self, tmp_path):
        path = tmp_path / "wal.dat"
        wal = WriteAheadLog(path)
        offsets = []
        for record in RECORDS:
            offsets.append(wal.bytes_written)
            wal.append(record)
        wal.close()

        # Flip a byte inside the *second* record's payload: everything
        # from there on is unrecoverable, only the prefix survives.
        flip_byte(path, WAL_HEADER_SIZE + offsets[1] + 10)

        reopened = WriteAheadLog(path)
        assert reopened.replay() == RECORDS[:1]
        reopened.close()

    def test_partial_header_only(self, tmp_path):
        """A crash mid-way through a frame *header* write leaves a tail too
        short to even carry a length field."""
        path = tmp_path / "wal.dat"
        injector = FaultInjector()
        wal = WriteAheadLog(path, ops=injector)
        wal.append(RECORDS[0])
        injector.crash_at = injector.op_count  # the next frame's header write
        with pytest.raises(SimulatedCrash):
            wal.append(RECORDS[1])
        wal._fh.close()

        reopened = WriteAheadLog(path)
        assert reopened.replay() == RECORDS[:1]
        reopened.close()

    def test_epoch_mismatch_discards_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat")
        for record in RECORDS:
            wal.append(record)
        # A snapshot from a newer generation fences off these records.
        assert wal.replay(expected_epoch=1) == []
        assert wal.epoch == 1
        assert wal.replay(expected_epoch=1) == []
        wal.close()

    def test_reset_clears_and_stamps(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat")
        wal.append(RECORDS[0])
        wal.reset(7)
        assert wal.epoch == 7
        assert wal.replay(expected_epoch=7) == []
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.dat")
        assert reopened.epoch == 7
        reopened.close()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "wal.dat"
        path.write_bytes(b"not a wal file at all")
        with pytest.raises(StorageError, match="bad magic"):
            WriteAheadLog(path)

    @pytest.mark.parametrize("torn_length", [0, 3, 10])
    def test_torn_header_reinitialises_as_empty_log(self, tmp_path, torn_length):
        """A crash during create/reset can tear the header itself; the log
        holds no records in those windows, so it reopens empty (epoch 0)."""
        path = tmp_path / "wal.dat"
        wal = WriteAheadLog(path)
        wal.append(RECORDS[0])
        wal.close()
        with open(path, "r+b") as fh:
            fh.truncate(torn_length)

        reopened = WriteAheadLog(path)
        assert reopened.epoch == 0
        assert reopened.replay() == []
        reopened.append(RECORDS[1])
        assert reopened.replay() == [RECORDS[1]]
        reopened.close()


class TestGroupCommit:
    """WAL fsync batching: ``fsync_batch=N`` coalesces N appends per fsync."""

    def test_default_never_fsyncs_on_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat")
        for record in RECORDS:
            wal.append(record)
        assert wal.syncs_performed == 0
        wal.close()

    def test_fsync_per_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat", fsync_batch=1)
        for record in RECORDS:
            wal.append(record)
        assert wal.syncs_performed == len(RECORDS)
        wal.close()

    def test_batch_coalesces_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat", fsync_batch=3)
        for _ in range(7):
            wal.append(RECORDS[0])
        # 7 appends at batch 3 -> fsyncs after the 3rd and 6th.
        assert wal.syncs_performed == 2
        wal.close()
        # close() fsyncs the un-batched tail so no record is left exposed.
        assert wal.syncs_performed == 3

    def test_explicit_sync_resets_the_batch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat", fsync_batch=4)
        wal.append(RECORDS[0])
        wal.append(RECORDS[1])
        wal.sync()
        wal.append(RECORDS[2])
        assert wal.syncs_performed == 1  # batch restarted after sync
        wal.close()

    def test_grouped_records_survive_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.dat", fsync_batch=8)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.dat", fsync_batch=8)
        assert reopened.replay() == RECORDS
        reopened.close()

    def test_database_reports_wal_fsyncs(self, tmp_path):
        from repro.minidb import FLOAT, INTEGER, Database, make_schema

        db = Database.open(str(tmp_path / "db"), wal_fsync_batch=2)
        table = db.create_table(
            "T", make_schema(("k", INTEGER, False), ("v", FLOAT), primary_key=["k"])
        )
        for k in range(5):
            table.insert((k, float(k)))
        snapshot = db.io_snapshot()
        assert snapshot["wal_fsyncs"] >= 2
        assert snapshot["wal_bytes_written"] > 0
        db.close()

    def test_memory_database_reports_zero_fsyncs(self):
        from repro.minidb import Database

        assert Database().io_snapshot()["wal_fsyncs"] == 0.0


class TestFrames:
    def test_frame_round_trip_by_offset(self, tmp_path):
        path = tmp_path / "frames.dat"
        payloads = [dump_record(("page", i, list(range(i)))) for i in range(5)]
        with open(path, "w+b") as fh:
            offsets = [write_frame(fh, payload) for payload in payloads]
        with open(path, "rb") as fh:
            for offset, payload in zip(offsets, payloads):
                assert read_frame_at(fh, offset) == payload

    def test_read_frame_at_detects_damage(self, tmp_path):
        path = tmp_path / "frames.dat"
        with open(path, "w+b") as fh:
            write_frame(fh, b"payload-bytes")
        with open(path, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\x00")
        with open(path, "rb") as fh:
            with pytest.raises(StorageError, match="corrupt frame"):
                read_frame_at(fh, 0)

    def test_scan_frames_reports_good_end(self, tmp_path):
        path = tmp_path / "frames.dat"
        with open(path, "w+b") as fh:
            write_frame(fh, b"one")
            end = write_frame(fh, b"two") + 8 + len(b"two")
            fh.write(b"\x99\x00")  # torn header
        with open(path, "rb") as fh:
            scan = scan_frames(fh, 0)
        assert scan.payloads == [b"one", b"two"]
        assert scan.torn
        assert scan.good_end == end
