"""Unit tests for the expression tree used by predicates and projections."""

import math

import pytest

from repro.minidb import QueryError, and_, col, func, in_set, is_null, lit, not_, or_


ROW = {"a": 5, "b": 2.5, "name": "hub", "missing": None, "CRAWL.oid": 77}


class TestColumnResolution:
    def test_bare_and_qualified_names(self):
        assert col("a").evaluate(ROW) == 5
        assert col("CRAWL.oid").evaluate(ROW) == 77

    def test_bare_name_falls_back_to_unique_qualified(self):
        assert col("oid").evaluate({"CRAWL.oid": 9}) == 9

    def test_ambiguous_bare_name_raises(self):
        with pytest.raises(QueryError):
            col("oid").evaluate({"CRAWL.oid": 1, "LINK.oid": 2})

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            col("nope").evaluate(ROW)

    def test_qualified_name_falls_back_to_bare(self):
        assert col("CRAWL.a").evaluate({"a": 3}) == 3


class TestComparisonsAndArithmetic:
    def test_comparisons(self):
        assert (col("a") > lit(4)).evaluate(ROW) is True
        assert (col("a") <= lit(4)).evaluate(ROW) is False
        assert (col("name") == lit("hub")).evaluate(ROW) is True
        assert (col("name") != lit("auth")).evaluate(ROW) is True

    def test_null_comparisons_are_false(self):
        assert (col("missing") == lit(None)).evaluate(ROW) is False
        assert (col("missing") > lit(0)).evaluate(ROW) is False

    def test_arithmetic_and_null_propagation(self):
        assert (col("a") + col("b")).evaluate(ROW) == 7.5
        assert (col("a") * lit(2)).evaluate(ROW) == 10
        assert (col("a") - lit(1)).evaluate(ROW) == 4
        assert (col("a") / lit(2)).evaluate(ROW) == 2.5
        assert (col("missing") + lit(1)).evaluate(ROW) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(QueryError):
            (col("a") / lit(0)).evaluate(ROW)

    def test_negation(self):
        assert (-col("a")).evaluate(ROW) == -5

    def test_referenced_columns(self):
        expression = and_(col("a") > lit(1), col("b") < col("a"))
        assert expression.referenced_columns() == {"a", "b"}


class TestBooleanConnectives:
    def test_and_or_not(self):
        assert and_(col("a") > lit(1), col("b") > lit(1)).evaluate(ROW) is True
        assert or_(col("a") > lit(100), col("b") > lit(1)).evaluate(ROW) is True
        assert not_(col("a") > lit(100)).evaluate(ROW) is True

    def test_empty_and_or(self):
        assert and_().evaluate(ROW) is True
        assert or_().evaluate(ROW) is False

    def test_single_part_passthrough(self):
        single = col("a") > lit(1)
        assert and_(single) is single
        assert or_(single) is single


class TestFunctionsAndPredicates:
    def test_in_set(self):
        assert in_set(col("a"), [1, 5, 9]).evaluate(ROW) is True
        assert in_set(col("a"), [2, 3], negated=True).evaluate(ROW) is True
        assert in_set(col("missing"), [None]).evaluate(ROW) is False

    def test_is_null(self):
        assert is_null(col("missing")).evaluate(ROW) is True
        assert is_null(col("a"), negated=True).evaluate(ROW) is True

    def test_coalesce_exp_log(self):
        assert func("coalesce", col("missing"), lit(3)).evaluate(ROW) == 3
        assert func("exp", lit(0)).evaluate(ROW) == 1.0
        assert abs(func("log", lit(math.e)).evaluate(ROW) - 1.0) < 1e-12
        assert func("abs", lit(-2)).evaluate(ROW) == 2
        assert func("floor", lit(3.7)).evaluate(ROW) == 3
        assert func("ceil", lit(3.2)).evaluate(ROW) == 4
        assert func("sqrt", lit(9)).evaluate(ROW) == 3

    def test_log_of_nonpositive_raises(self):
        with pytest.raises(QueryError):
            func("log", lit(0)).evaluate(ROW)

    def test_unknown_function_raises(self):
        with pytest.raises(QueryError):
            func("bogus", lit(1)).evaluate(ROW)

    def test_null_argument_propagates(self):
        assert func("exp", col("missing")).evaluate(ROW) is None
