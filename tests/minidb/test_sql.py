"""Tests for the compact SQL dialect: parser and executor."""

import math

import pytest

from repro.minidb import Database, FLOAT, INTEGER, SQLSyntaxError, TEXT, make_schema, parse_sql
from repro.minidb.errors import QueryError
from repro.minidb.sql import SelectStatement


@pytest.fixture()
def db():
    database = Database(buffer_pool_pages=128)
    crawl = database.create_table(
        "CRAWL",
        make_schema(
            ("oid", INTEGER, False),
            ("url", TEXT),
            ("sid", INTEGER),
            ("relevance", FLOAT),
            ("numtries", INTEGER),
            ("lastvisited", INTEGER),
            ("kcid", INTEGER),
            ("status", TEXT),
            primary_key=["oid"],
        ),
    )
    link = database.create_table(
        "LINK",
        make_schema(
            ("oid_src", INTEGER),
            ("sid_src", INTEGER),
            ("oid_dst", INTEGER),
            ("sid_dst", INTEGER),
            ("wgt_fwd", FLOAT),
            ("wgt_rev", FLOAT),
        ),
    )
    hubs = database.create_table(
        "HUBS", make_schema(("oid", INTEGER, False), ("score", FLOAT), primary_key=["oid"])
    )
    database.create_table(
        "AUTH", make_schema(("oid", INTEGER, False), ("score", FLOAT), primary_key=["oid"])
    )
    taxonomy = database.create_table(
        "TAXONOMY", make_schema(("kcid", INTEGER, False), ("name", TEXT), primary_key=["kcid"])
    )
    for i in range(30):
        crawl.insert(
            {
                "oid": i,
                "url": f"http://s{i % 5}.example/{i}",
                "sid": i % 5,
                "relevance": (i % 10) / 10,
                "numtries": 0 if i % 3 else 1,
                "lastvisited": i,
                "kcid": i % 4,
                "status": "visited" if i % 2 == 0 else "frontier",
            }
        )
    for i in range(29):
        link.insert(
            {
                "oid_src": i,
                "sid_src": i % 5,
                "oid_dst": i + 1,
                "sid_dst": (i + 1) % 5,
                "wgt_fwd": 0.5,
                "wgt_rev": 0.5,
            }
        )
    for i in range(10):
        hubs.insert({"oid": i, "score": i / 10})
    for kcid, name in enumerate(["root", "arts", "recreation", "cycling"]):
        taxonomy.insert({"kcid": kcid, "name": name})
    return database


class TestParser:
    def test_parse_simple_select(self):
        statement = parse_sql("select oid, relevance from CRAWL where relevance > 0.5")
        assert isinstance(statement, SelectStatement)
        assert len(statement.items) == 2
        assert statement.tables == [("CRAWL", "CRAWL")]

    def test_parse_rejects_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("selekt * from CRAWL")
        with pytest.raises(SQLSyntaxError):
            parse_sql("select * from CRAWL extra tokens ~~")

    def test_parse_group_order_limit(self):
        statement = parse_sql(
            "select sid, count(*) n from CRAWL group by sid having count(*) > 2"
            " order by n desc limit 3"
        )
        assert statement.group_by and statement.having is not None
        assert statement.limit == 3
        assert statement.order_by[0][1] is False

    def test_parse_string_literal_with_quote(self):
        statement = parse_sql("select * from CRAWL where url = 'it''s'")
        assert statement.where is not None


class TestSelectExecution:
    def test_select_star_and_projection(self, db):
        rows = db.sql("select * from CRAWL where oid = 3")
        assert rows[0]["url"] == "http://s3.example/3"
        rows = db.sql("select url, relevance r from CRAWL where oid = 3")
        assert rows == [{"url": "http://s3.example/3", "r": 0.3}]

    def test_where_and_or_not_in(self, db):
        rows = db.sql(
            "select oid from CRAWL where (relevance > 0.7 or oid in (1, 2)) and not (sid = 4)"
        )
        oids = {r["oid"] for r in rows}
        assert {1, 2}.issubset(oids)
        assert all(oid % 5 != 4 or (oid in (1, 2)) for oid in oids)

    def test_group_by_aggregates(self, db):
        rows = db.sql(
            "select sid, count(*) n, avg(relevance) r from CRAWL group by sid order by sid"
        )
        assert len(rows) == 5
        assert rows[0]["sid"] == 0 and rows[0]["n"] == 6

    def test_group_by_expression_with_function(self, db):
        rows = db.sql(
            "select floor(lastvisited / 10) bucket, count(*) n from CRAWL"
            " group by floor(lastvisited / 10) order by floor(lastvisited / 10)"
        )
        assert [r["bucket"] for r in rows] == [0, 1, 2]
        assert sum(r["n"] for r in rows) == 30

    def test_aggregate_with_exp(self, db):
        rows = db.sql("select avg(exp(relevance)) e from CRAWL")
        assert rows[0]["e"] > 1.0

    def test_join_via_comma_from(self, db):
        rows = db.sql(
            "select CRAWL.kcid kcid, count(oid) cnt, name from CRAWL, TAXONOMY"
            " where CRAWL.kcid = TAXONOMY.kcid group by CRAWL.kcid, name order by cnt desc"
        )
        assert len(rows) == 4
        assert {r["name"] for r in rows} == {"root", "arts", "recreation", "cycling"}

    def test_three_table_join_with_inequality_filter(self, db):
        rows = db.sql(
            "select oid_dst, sum(score * wgt_fwd) s from HUBS, LINK, CRAWL"
            " where sid_src <> sid_dst and HUBS.oid = oid_src and oid_dst = CRAWL.oid"
            "   and relevance > 0.0 group by oid_dst order by s desc limit 5"
        )
        assert rows and all(r["s"] is not None for r in rows)

    def test_nested_in_subqueries(self, db):
        rows = db.sql(
            "select url, relevance from CRAWL where oid in"
            " (select oid_dst from LINK where oid_src in (select oid from HUBS where score > 0.7)"
            "  and sid_src <> sid_dst) and numtries = 0"
        )
        assert all(r["relevance"] is not None for r in rows)

    def test_scalar_subquery_and_parameters(self, db):
        rows = db.sql(
            "select count(*) n from CRAWL where relevance > (select avg(relevance) from CRAWL)"
        )
        assert 0 < rows[0]["n"] < 30
        rows = db.sql("select count(*) n from CRAWL where relevance > :cut", {"cut": 0.8})
        assert rows[0]["n"] == 3
        with pytest.raises(QueryError):
            db.sql("select * from CRAWL where relevance > :missing_param")

    def test_distinct_and_is_null(self, db):
        rows = db.sql("select distinct sid from CRAWL order by sid")
        assert [r["sid"] for r in rows] == [0, 1, 2, 3, 4]
        assert db.sql("select count(*) n from CRAWL where kcid is null")[0]["n"] == 0
        assert db.sql("select count(*) n from CRAWL where kcid is not null")[0]["n"] == 30


class TestMutationStatements:
    def test_insert_values_and_select(self, db):
        result = db.sql("insert into HUBS(oid, score) values (100, 0.9), (101, 0.8)")
        assert result == [{"rowcount": 2}]
        result = db.sql(
            "insert into AUTH(oid, score) (select oid, score from HUBS where score > 0.85)"
        )
        assert result[0]["rowcount"] >= 1

    def test_update_with_scalar_subquery_normalisation(self, db):
        total = db.sql("select sum(score) s from HUBS")[0]["s"]
        db.sql("update HUBS set score = score / (select sum(score) from HUBS)")
        new_total = db.sql("select sum(score) s from HUBS")[0]["s"]
        assert math.isclose(new_total, 1.0, rel_tol=1e-9)
        assert total != 1.0

    def test_update_paper_style_parenthesised_column(self, db):
        db.sql("update HUBS set (score) = 0.5 where oid = 1")
        assert db.sql("select score from HUBS where oid = 1")[0]["score"] == 0.5

    def test_delete_with_and_without_predicate(self, db):
        assert db.sql("delete from AUTH")[0]["rowcount"] == 0
        count = db.sql("delete from HUBS where score < 0.5")[0]["rowcount"]
        assert count == 5
        assert db.sql("select count(*) n from HUBS")[0]["n"] == 5

    def test_insert_column_count_mismatch(self, db):
        with pytest.raises(QueryError):
            db.sql("insert into HUBS(oid, score) values (1)")
