"""Tests for minidb's bulk mutation paths: atomic insert_many and update_rows."""

import pytest

from repro.minidb import Database, FLOAT, INTEGER, TEXT, make_schema
from repro.minidb.errors import ConstraintError, SchemaError


def make_table(db=None, primary_key=("k",)):
    db = db or Database(buffer_pool_pages=64)
    table = db.create_table(
        "T",
        make_schema(
            ("k", INTEGER, False),
            ("v", FLOAT),
            ("s", TEXT),
            primary_key=list(primary_key),
        ),
    )
    return db, table


class TestInsertManyAtomicity:
    def test_returns_record_ids_in_order(self):
        _, table = make_table()
        rids = table.insert_many({"k": i, "v": float(i), "s": f"row{i}"} for i in range(5))
        assert len(rids) == 5
        for i, rid in enumerate(rids):
            assert table.read(rid)[0] == i

    def test_duplicate_key_within_batch_leaves_table_unchanged(self):
        _, table = make_table()
        table.insert({"k": 1, "v": 1.0, "s": "one"})
        with pytest.raises(ConstraintError):
            table.insert_many(
                [
                    {"k": 2, "v": 2.0, "s": "two"},
                    {"k": 3, "v": 3.0, "s": "three"},
                    {"k": 2, "v": 2.5, "s": "dup"},
                ]
            )
        # Nothing from the failed batch is visible.
        assert len(table) == 1
        assert table.get_by_key((2,)) is None
        assert table.get_by_key((3,)) is None

    def test_conflict_with_existing_row_is_atomic(self):
        _, table = make_table()
        table.insert({"k": 7, "v": 7.0, "s": "seven"})
        with pytest.raises(ConstraintError):
            table.insert_many(
                [
                    {"k": 8, "v": 8.0, "s": "eight"},
                    {"k": 7, "v": 0.0, "s": "conflict"},
                ]
            )
        assert len(table) == 1
        assert table.get_by_key((8,)) is None

    def test_type_error_mid_batch_is_atomic(self):
        _, table = make_table()
        with pytest.raises(SchemaError):
            table.insert_many(
                [
                    {"k": 1, "v": 1.0, "s": "ok"},
                    {"k": 2, "v": "not-a-float", "s": "bad"},
                ]
            )
        assert len(table) == 0

    def test_indexes_consistent_after_bulk_insert(self):
        _, table = make_table()
        table.create_index("t_s", ["s"], kind="hash")
        table.insert_many({"k": i, "v": 0.0, "s": "even" if i % 2 == 0 else "odd"} for i in range(10))
        assert len(table.lookup("t_s", ("even",))) == 5
        assert len(table.lookup("t_s", ("odd",))) == 5

    def test_empty_batch_is_noop(self):
        _, table = make_table()
        assert table.insert_many([]) == []
        assert len(table) == 0


class TestUpdateRows:
    def test_updates_values_and_returns_count(self):
        _, table = make_table()
        rids = table.insert_many({"k": i, "v": float(i), "s": "x"} for i in range(4))
        updated = table.update_rows([(rid, {"v": 9.5}) for rid in rids])
        assert updated == 4
        assert all(table.read(rid)[1] == 9.5 for rid in rids)

    def test_indexed_column_change_moves_buckets(self):
        _, table = make_table()
        table.create_index("t_s", ["s"], kind="hash")
        rids = table.insert_many({"k": i, "v": 0.0, "s": "frontier"} for i in range(6))
        table.update_rows([(rid, {"s": "visited"}) for rid in rids[:4]])
        assert len(table.lookup("t_s", ("frontier",))) == 2
        assert len(table.lookup("t_s", ("visited",))) == 4

    def test_unindexed_column_change_skips_index_maintenance(self):
        _, table = make_table()
        index = table.create_index("t_s", ["s"], kind="hash")
        rids = table.insert_many({"k": i, "v": 0.0, "s": "a"} for i in range(3))
        before = index.probe_count
        table.update_rows([(rid, {"v": 1.25}) for rid in rids])
        assert index.probe_count == before
        assert len(table.lookup("t_s", ("a",))) == 3

    def test_text_growth_updates_page_accounting(self):
        db, table = make_table()
        [rid] = table.insert_many([{"k": 1, "v": 0.0, "s": "short"}])
        page = db.buffer_pool.get_page(rid.page_id)
        used_before = page.used_bytes
        table.update_rows([(rid, {"s": "a much longer replacement string"})])
        grown = len("a much longer replacement string") - len("short")
        assert page.used_bytes == used_before + grown

    def test_primary_key_change_falls_back_to_checked_path(self):
        _, table = make_table()
        rids = table.insert_many([{"k": 1, "v": 0.0, "s": "a"}, {"k": 2, "v": 0.0, "s": "b"}])
        with pytest.raises(ConstraintError):
            table.update_rows([(rids[0], {"k": 2})])
        table.update_rows([(rids[0], {"k": 3})])
        assert table.get_by_key((3,)) is not None

    def test_wide_batch_survives_pool_eviction_on_durable_backend(self, tmp_path):
        """Updates spanning more pages than the buffer pool must not be lost.

        Regression test: caching Page objects across the batch's reads let
        later reads evict earlier pages; writes then mutated detached
        objects and a durable backend silently dropped them.
        """
        db = Database.open(str(tmp_path / "db"), buffer_pool_pages=2)
        table = db.create_table(
            "T",
            make_schema(
                ("k", INTEGER, False),
                ("v", FLOAT),
                ("pad", TEXT),
                primary_key=["k"],
            ),
        )
        # Large rows -> a couple of rows per page -> far more pages than frames.
        rids = table.insert_many((i, 0.0, "x" * 1500) for i in range(40))
        table.update_rows([(rid, {"v": 1.0}) for rid in rids])
        assert all(row[1] == 1.0 for row in table.rows())
        db.checkpoint()
        db.close()
        reopened = Database.open(str(tmp_path / "db"))
        assert all(row[1] == 1.0 for row in reopened.table("T").rows())
        reopened.close()

    def test_update_column_wide_batch_on_durable_backend(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), buffer_pool_pages=2)
        table = db.create_table(
            "T",
            make_schema(("k", INTEGER, False), ("v", FLOAT), ("pad", TEXT)),
        )
        rids = table.insert_many((i, 0.0, "y" * 1500) for i in range(40))
        table.update_column("v", [(rid, 2.5) for rid in rids])
        assert all(row[1] == 2.5 for row in table.rows())
        db.close()

    def test_unknown_column_raises(self):
        _, table = make_table()
        rids = table.insert_many([{"k": 1, "v": 0.0, "s": "a"}])
        with pytest.raises(SchemaError):
            table.update_rows([(rids[0], {"nope": 1})])

    def test_empty_updates_is_noop(self):
        _, table = make_table()
        assert table.update_rows([]) == 0
