"""The consolidated public API surface: ``repro`` is the one import root."""

import ast
import pathlib

import pytest

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicSurface:
    def test_every_all_name_resolves(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_all_is_sorted_and_unique(self):
        names = [name for name in repro.__all__ if name != "__version__"]
        assert names == sorted(set(names))

    def test_service_layer_is_exported(self):
        for name in ("JobManager", "CrawlService", "JobSpec", "CrawlHandle", "StorageConfig"):
            assert name in repro.__all__

    def test_query_layer_is_exported(self):
        for name in ("Query", "Plan", "ExplainResult"):
            assert name in repro.__all__


class TestLegacyScanShim:
    """The Table.scan() analytics shim: warn on legacy use, raise on mixed."""

    @pytest.fixture()
    def db(self):
        from repro.minidb import Database, INTEGER, make_schema

        database = repro.Database(buffer_pool_pages=16)
        assert repro.Database is Database
        table = database.create_table(
            "T", make_schema(("oid", INTEGER, False), primary_key=["oid"])
        )
        table.insert_many([{"oid": i} for i in range(5)])
        return database

    def test_legacy_scan_emits_deprecation_warning(self, db):
        from repro.minidb import legacy_scan_rows

        with pytest.warns(DeprecationWarning, match="Table.scan"):
            rows = legacy_scan_rows(db.table("T"))
        assert rows == [{"oid": row["oid"]} for row in db.query("T").run()]

    def test_mixed_old_and_new_usage_raises(self, db):
        from repro.minidb import legacy_scan_rows

        with pytest.raises(ValueError, match="not both"):
            legacy_scan_rows(db.table("T"), query=db.query("T"))


class TestExamplesImportOnlyThePublicSurface:
    def test_examples_exist(self):
        assert (EXAMPLES_DIR / "serve_crawls.py").is_file()

    def test_no_example_reaches_into_submodules(self):
        offenders = []
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module == "repro" or not module.startswith("repro"):
                        continue
                    offenders.append(f"{path.name}: from {module} import ...")
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.startswith("repro.") or alias.name == "repro":
                            offenders.append(f"{path.name}: import {alias.name}")
        assert offenders == []

    def test_examples_only_use_exported_names(self):
        exported = set(repro.__all__)
        offenders = []
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module == "repro":
                    for alias in node.names:
                        if alias.name not in exported:
                            offenders.append(f"{path.name}: {alias.name}")
        assert offenders == []
