"""The consolidated public API surface: ``repro`` is the one import root."""

import ast
import pathlib

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicSurface:
    def test_every_all_name_resolves(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_all_is_sorted_and_unique(self):
        names = [name for name in repro.__all__ if name != "__version__"]
        assert names == sorted(set(names))

    def test_service_layer_is_exported(self):
        for name in ("JobManager", "CrawlService", "JobSpec", "CrawlHandle", "StorageConfig"):
            assert name in repro.__all__


class TestExamplesImportOnlyThePublicSurface:
    def test_examples_exist(self):
        assert (EXAMPLES_DIR / "serve_crawls.py").is_file()

    def test_no_example_reaches_into_submodules(self):
        offenders = []
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    if module == "repro" or not module.startswith("repro"):
                        continue
                    offenders.append(f"{path.name}: from {module} import ...")
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name.startswith("repro.") or alias.name == "repro":
                            offenders.append(f"{path.name}: import {alias.name}")
        assert offenders == []

    def test_examples_only_use_exported_names(self):
        exported = set(repro.__all__)
        offenders = []
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module == "repro":
                    for alias in node.names:
                        if alias.name not in exported:
                            offenders.append(f"{path.name}: {alias.name}")
        assert offenders == []
