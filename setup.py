"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (where PEP 517 editable builds
fail with ``invalid command 'bdist_wheel'``) can still do a legacy
editable install::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
