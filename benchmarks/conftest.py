"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one of the paper's figures (see
DESIGN.md §4 and EXPERIMENTS.md).  The synthetic web and the trained
classifier are built once per session; individual benchmarks then time
the crawl / classification / distillation step they correspond to and
attach the figure's headline numbers as ``extra_info`` so the JSON
output of ``pytest benchmarks/ --benchmark-only --benchmark-json=...``
doubles as the experiment record.

Two engine knobs are exposed as pytest options so the crawl benchmarks
can sweep the batched pipeline::

    pytest benchmarks/bench_fig5_harvest.py --batch 8 --workers 8

Engine benchmark payloads registered through the ``bench_recorder``
fixture are written to ``BENCH_engine.json`` (stable schema: git sha,
config, pages/sec) at session end so CI artifacts are comparable across
PRs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.crawler.engine import CrawlerConfig
from repro.experiments.workloads import build_crawl_workload

#: Scale factor for the benchmark web: large enough for the paper's effects,
#: small enough that the whole benchmark suite finishes in a few minutes.
BENCH_SCALE = 0.6
BENCH_SEED = 7
BENCH_CRAWL_PAGES = 600


def pytest_addoption(parser):
    parser.addoption(
        "--batch",
        type=int,
        default=1,
        help="crawl engine round size K for the crawl benchmarks (1 = serial)",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="fetch-stage worker threads for the crawl benchmarks",
    )
    parser.addoption(
        "--bench-json",
        type=Path,
        default=Path("BENCH_engine.json"),
        help="where to write recorded engine benchmark payloads",
    )


@pytest.fixture(scope="session")
def crawl_workload():
    """The trained crawling workload shared by the Figure 5/6/7 benchmarks."""
    return build_crawl_workload(seed=BENCH_SEED, scale=BENCH_SCALE, max_pages=BENCH_CRAWL_PAGES)


@pytest.fixture(scope="session")
def bench_crawl_pages() -> int:
    """Crawl budget used by the crawl-level benchmarks."""
    return BENCH_CRAWL_PAGES


@pytest.fixture()
def engine_crawler_config(request, crawl_workload, bench_crawl_pages) -> CrawlerConfig:
    """The workload's own crawler config plus the --batch/--workers sweep."""
    return dataclasses.replace(
        crawl_workload.system.config.crawler,
        max_pages=bench_crawl_pages,
        batch_size=request.config.getoption("--batch"),
        fetch_workers=request.config.getoption("--workers"),
    )


_RECORDED: list[dict] = []


@pytest.fixture(scope="session")
def bench_recorder():
    """Collects engine benchmark payloads; written as BENCH_engine.json."""

    def record(payload: dict) -> None:
        _RECORDED.append(payload)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDED:
        return
    output = session.config.getoption("--bench-json")
    # One payload is the common case; several (e.g. a sweep) nest under "runs".
    payload = _RECORDED[0] if len(_RECORDED) == 1 else {"runs": _RECORDED}
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
