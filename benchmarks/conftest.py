"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one of the paper's figures (see
DESIGN.md §4 and EXPERIMENTS.md).  The synthetic web and the trained
classifier are built once per session; individual benchmarks then time
the crawl / classification / distillation step they correspond to and
attach the figure's headline numbers as ``extra_info`` so the JSON
output of ``pytest benchmarks/ --benchmark-only --benchmark-json=...``
doubles as the experiment record.
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import build_crawl_workload

#: Scale factor for the benchmark web: large enough for the paper's effects,
#: small enough that the whole benchmark suite finishes in a few minutes.
BENCH_SCALE = 0.6
BENCH_SEED = 7
BENCH_CRAWL_PAGES = 600


@pytest.fixture(scope="session")
def crawl_workload():
    """The trained crawling workload shared by the Figure 5/6/7 benchmarks."""
    return build_crawl_workload(seed=BENCH_SEED, scale=BENCH_SCALE, max_pages=BENCH_CRAWL_PAGES)


@pytest.fixture(scope="session")
def bench_crawl_pages() -> int:
    """Crawl budget used by the crawl-level benchmarks."""
    return BENCH_CRAWL_PAGES
