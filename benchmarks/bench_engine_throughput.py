"""Engine throughput benchmark: serial reference loop vs. batched pipeline.

This is the repository's scaling benchmark (the start of the BENCH
trajectory): it crawls the same synthetic workload with the reference
serial engine and with the batched engine (``batch_size=8``,
``fetch_workers=8``) and reports pages/sec for both.  A ``batch_size=1``
run reproduces the serial crawl bit for bit
(``tests/crawler/test_engine.py`` enforces the equivalence).

Baseline history: with list-backed hash-index buckets the serial loop
was dominated by O(bucket) index deletes and the batched engine
sustained >= 3x its throughput.  Moving ``HashIndex`` to dict-backed
(ordered-set) buckets made those deletes O(1) and roughly *doubled*
serial throughput while leaving the batched pipeline unchanged, so the
re-baselined acceptance ratio is >= 1.3x (measured ~1.6x: serial ~730
vs. batched ~1170 pages/sec on the reference container).

``--durable`` adds a third row: the batched crawl on a durable
(segment-file + WAL) database with periodic checkpoints, quantifying
the price of persistence on the same workload.

Run standalone (CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick

or under pytest (full scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py

Either way the results land in ``BENCH_engine.json`` with a stable
schema (git sha, config, pages/sec per mode) so CI artifacts are
comparable across PRs.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.crawler.engine import CrawlerConfig
from repro.experiments.workloads import build_crawl_workload

#: Full-scale defaults (the acceptance configuration).
FULL = {"scale": 0.6, "pages": 1400, "distill_every": 100, "seed": 7}
#: Quick-smoke defaults (CI pull-request gate; small enough for seconds).
QUICK = {"scale": 0.3, "pages": 300, "distill_every": 100, "seed": 7}

#: The batched configuration of the acceptance criterion.
BATCH_SIZE = 8
FETCH_WORKERS = 8


def git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).parent,
                check=True,
            ).stdout.strip()
        )
    except Exception:
        return "unknown"


def crawl_once(
    system, seeds, pages: int, config: CrawlerConfig, checkpoint_dir: Optional[str] = None
) -> dict:
    start = time.perf_counter()
    result = system.crawl(
        max_pages=pages, seeds=seeds, crawler_config=config, checkpoint_dir=checkpoint_dir
    )
    elapsed = time.perf_counter() - start
    fetched = result.pages_fetched()
    stats = {
        "pages": fetched,
        "seconds": round(elapsed, 4),
        "pages_per_sec": round(fetched / elapsed, 2) if elapsed > 0 else 0.0,
        "harvest_rate": round(result.harvest_rate(), 4),
    }
    if checkpoint_dir is not None:
        snapshot = result.database.io_snapshot()
        stats["wal_bytes_written"] = int(snapshot["wal_bytes_written"])
        stats["pages_flushed"] = int(snapshot["pages_flushed"])
        result.database.close()
    return stats


def run_throughput(
    scale: float,
    pages: int,
    distill_every: int,
    seed: int,
    batch_size: int = BATCH_SIZE,
    fetch_workers: int = FETCH_WORKERS,
    repeats: int = 1,
    durable: bool = False,
) -> dict:
    """Crawl serial vs. batched (vs. durable batched) and return the payload."""
    workload = build_crawl_workload(seed=seed, scale=scale, max_pages=pages)
    system = workload.system
    seeds = system.default_seeds()

    def best(config: CrawlerConfig, persistent: bool = False) -> dict:
        runs = []
        for _ in range(repeats):
            if persistent:
                # Each repeat crawls into its own fresh directory: a reused
                # one would hold the previous run's checkpoint and refuse.
                with tempfile.TemporaryDirectory(prefix="bench-durable-") as tmp:
                    runs.append(
                        crawl_once(system, seeds, pages, config, checkpoint_dir=f"{tmp}/db")
                    )
            else:
                runs.append(crawl_once(system, seeds, pages, config))
        return min(runs, key=lambda r: r["seconds"])

    serial = best(CrawlerConfig(max_pages=pages, distill_every=distill_every))
    batched = best(
        CrawlerConfig(
            max_pages=pages,
            distill_every=distill_every,
            engine="batched",
            batch_size=batch_size,
            fetch_workers=fetch_workers,
        )
    )
    results = [
        {"mode": "serial", **serial},
        {"mode": "batched", **batched},
    ]
    if durable:
        # The same batched crawl, persisted: every write WAL-logged, dirty
        # pages flushed on eviction, and a checkpoint every 200 fetches.
        durable_run = best(
            CrawlerConfig(
                max_pages=pages,
                distill_every=distill_every,
                engine="batched",
                batch_size=batch_size,
                fetch_workers=fetch_workers,
                checkpoint_every=200,
            ),
            persistent=True,
        )
        results.append({"mode": "durable", **durable_run})
    speedup = (
        round(batched["pages_per_sec"] / serial["pages_per_sec"], 2)
        if serial["pages_per_sec"]
        else 0.0
    )
    return {
        "bench": "engine_throughput",
        "schema_version": 2,
        "git_sha": git_sha(),
        "config": {
            "scale": scale,
            "pages": pages,
            "distill_every": distill_every,
            "seed": seed,
            "batch_size": batch_size,
            "fetch_workers": fetch_workers,
            "repeats": repeats,
            "durable": durable,
        },
        "results": results,
        "speedup": speedup,
    }


def write_payload(payload: dict, output: Path) -> None:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- pytest entry point --------------------------------------------------------------
def test_engine_throughput(bench_recorder, pytestconfig):
    """Full-scale serial-vs-batched comparison; records BENCH_engine.json."""
    payload = run_throughput(**FULL, repeats=2)
    bench_recorder(payload)
    serial, batched = payload["results"]
    assert serial["pages"] == batched["pages"] == FULL["pages"]
    # Acceptance, re-baselined after the O(1) HashIndex bucket change: the
    # serial loop no longer pays O(bucket) index deletes, so the batched
    # margin is ~1.6x (was >= 3x against the slower seed serial path).
    assert payload["speedup"] >= 1.3, payload


# -- CLI entry point ------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke configuration")
    parser.add_argument("--scale", type=float, default=None, help="synthetic web scale factor")
    parser.add_argument("--pages", type=int, default=None, help="crawl budget per run")
    parser.add_argument("--distill-every", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--batch", type=int, default=BATCH_SIZE, help="batched-mode round size K")
    parser.add_argument("--workers", type=int, default=FETCH_WORKERS, help="fetch-stage threads")
    parser.add_argument("--repeats", type=int, default=1, help="take the best of N runs per mode")
    parser.add_argument(
        "--durable",
        action="store_true",
        help="also crawl on a durable (WAL + checkpoint) database and report the overhead",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_engine.json"), help="result JSON path"
    )
    args = parser.parse_args(argv)

    defaults = QUICK if args.quick else FULL
    payload = run_throughput(
        scale=args.scale if args.scale is not None else defaults["scale"],
        pages=args.pages if args.pages is not None else defaults["pages"],
        distill_every=(
            args.distill_every if args.distill_every is not None else defaults["distill_every"]
        ),
        seed=args.seed if args.seed is not None else defaults["seed"],
        batch_size=args.batch,
        fetch_workers=args.workers,
        repeats=args.repeats,
        durable=args.durable,
    )
    write_payload(payload, args.output)
    for row in payload["results"]:
        extra = (
            f"  wal={row['wal_bytes_written']}B flushed={row['pages_flushed']}p"
            if "wal_bytes_written" in row
            else ""
        )
        print(
            f"{row['mode']:>8}: {row['pages']} pages in {row['seconds']}s "
            f"({row['pages_per_sec']} pages/sec){extra}"
        )
    print(f"speedup : {payload['speedup']}x  ->  {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
