"""Engine throughput benchmark: serial loop vs. batched pipeline vs. columnar backend.

This is the repository's scaling benchmark (the start of the BENCH
trajectory): it crawls the same synthetic workload with the reference
serial engine and with the batched engine under each scoring backend in
the ``--backend`` matrix, and reports pages/sec plus a per-stage
wall-clock breakdown (fetch / classify / write / distill) for every row.

Baseline history:

* v1 — list-backed hash-index buckets; batched >= 3x serial.
* v2 — dict-backed (ordered-set) buckets made index deletes O(1),
  roughly doubling the serial loop; re-baselined to batched >= 1.3x
  serial (measured serial ~739 / batched ~1141 pages/sec).
* v3 — the columnar NumPy scoring core (PR 3): batch
  classification and distillation compiled into array kernels, bulk
  write-path fast paths through minidb.  Defaults re-baselined to
  ``batch_size=32, fetch_workers=1``: the columnar kernels amortise
  over larger rounds, and on the single-core reference container the
  thread-pool fetch stage only costs (the simulated fetcher is CPU-only
  and lock-serialised — see ROADMAP).  Acceptance: the numpy-backend
  batched row must reach >= 3x the committed v2 batched baseline of
  1141 pages/sec, and the python rows must not regress.
* v4 — fetch transports and the asyncio fetch pipeline
  (PR 4): every row is tagged with its ``transport`` / ``fetch_mode``
  and carries the engine's ``fetch_overlap`` ratio (fraction of round
  processing that ran while fetches were still in flight).
  ``--transport latency`` adds an overlap comparison — the same batched
  crawl through the latency-injecting transport (``--latency-ms``),
  threaded vs. async — and reports ``async_speedup``.  Acceptance:
  async >= 2x the threaded fetch path under injected latency; the
  simulated-transport rows gate against the committed baseline exactly
  as in v3 (rows are matched by mode/backend/transport/fetch_mode, so
  pre-v4 baselines compare like with like).
* v5 — segment-file compaction (PR 5).  Durable rows
  report the segment-file byte split (``segment_bytes_live/dead``) and
  the cumulative checkpoint pause (``checkpoint_pause_s``); ``--compact``
  adds a rewrite-heavy durable row (frequent checkpoints, aggressive
  compaction policy) whose ``bytes_reclaimed`` / ``compactions_run``
  quantify how much disk the compactor claws back and what the crawl
  pays for it in checkpoint pauses.
* v6 — the multi-tenant crawl service (PR 6).
  ``--service`` adds a load-generator row: ``--service-jobs`` concurrent
  crawl jobs submitted to a :class:`repro.JobManager` multiplexing one
  shared fetch pool, fair round-robin scheduled to completion.  The row
  reports aggregate ``pages_per_sec`` plus the service-level metrics —
  ``jobs``, ``jobs_per_sec``, and the submit-to-completion job latency
  percentiles ``job_latency_p50_s`` / ``job_latency_p99_s``.  Because
  every tenant is bit-identical to a solo crawl, the row measures pure
  scheduling/multiplexing overhead.
* v7 — the sharded crawl engine (PR 7).  ``--shards N,M,...``
  adds one ``sharded-N`` row per shard count: the same workload under
  ``engine="sharded"`` with ``N`` workers (``--shard-runner`` picks the
  multiprocessing fleet or the in-process simulation), timed *after* the
  fleet is spawned and warmed (worker start-up is a fixed cost the
  steady-state throughput claim excludes).  The payload reports
  ``shard_scaling`` — the largest shard count's pages/sec over the
  ``sharded-1`` row's — and, because every sharded crawl is bit-identical
  to the batched engine regardless of N, the rows measure pure
  parallelism.  Acceptance (only on machines with >= 4 cores — the
  single-core reference container records the honest ~1x and skips the
  gate): ``shard_scaling`` >= 2.0x on the CI smoke run, >= 2.5x at full
  scale.

* v8 — pipeline saturation (PR 8).  Every row carries a
  ``prefetch`` tag and its ``prefetch_stale_ratio``; ``--transport
  latency`` now runs *three* overlap rows — threaded, async, and async
  with cross-round speculation — and reports ``prefetch_speedup``
  (async+prefetch over plain async) next to ``async_speedup``.
  ``--compact`` runs the rewrite-heavy durable row twice: once with the
  inline checkpoint-time compactor (``compact``, the v5 row) and once
  with the background compaction worker (``compact-bg``), whose
  ``checkpoint_pause_s`` must undercut the inline row's — the rewrite
  happens off the checkpoint pause — while still reporting
  ``bytes_reclaimed > 0``.  The regression gate's row key gains the
  prefetch tag, so speculative rows only gate against speculative
  baselines.

* v9 (this schema) — the indexed graph-query layer (PR 9).  Two
  ``query-*`` rows measure read latency over a freshly-crawled store:
  ``query-reach`` runs the ``reachable_from()`` reachability predicate
  (interval-index window scans keying a batched pk lookup) and
  ``query-join`` a selective CRAWL⋈LINK join (index-nested-loop over the
  link index), each timed under the index planner *and* re-run with
  ``REPRO_SQL_PLANNER=scan`` as its baseline.  Every row reports
  ``indexed_ms`` / ``scan_ms`` / ``query_speedup`` and pins ``identical``
  (the two planners must return bit-identical rows); ``pages_per_sec``
  carries the indexed path's queries/sec so the ordinary regression gate
  covers query latency too.  Acceptance at full workload scale: both
  speedups >= 3x (the CLI gates this on non ``--quick`` runs).

``--durable`` adds a row: the batched crawl (fastest backend in the
matrix) on a durable (segment-file + WAL) database with periodic
checkpoints and optional WAL group commit (``--wal-fsync-batch``),
quantifying the price of persistence on the same workload.

``--baseline PATH`` turns the run into a regression gate: rows are
compared against the committed payload by (mode, backend) and the
process exits non-zero if any shared row's pages/sec dropped by more
than ``--max-drop`` (default 20%).

Run standalone (CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick

or under pytest (full scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py

Either way the results land in ``BENCH_engine.json`` with a stable
schema (git sha, config, pages/sec + stages per row) so CI artifacts are
comparable across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.config import JobSpec
from repro.crawler.engine import CrawlerConfig
from repro.experiments.workloads import build_crawl_workload
from repro.minidb import StorageConfig
from repro.minidb.planner import PLANNER_MODE_ENV
from repro.service import JobManager

#: Full-scale defaults (the acceptance configuration).
FULL = {"scale": 0.6, "pages": 1400, "distill_every": 100, "seed": 7}
#: Quick-smoke defaults (CI pull-request gate; small enough for seconds).
QUICK = {"scale": 0.3, "pages": 300, "distill_every": 100, "seed": 7}

#: The batched configuration of the acceptance criterion (v3 defaults).
BATCH_SIZE = 32
FETCH_WORKERS = 1

#: Scoring backends measured by default (one batched row each).
BACKENDS = ("python", "numpy")

#: The committed v2 batched pages/sec (PR 2, python path, the number the
#: columnar backend's >= 3x acceptance criterion is measured against).
PR2_BATCHED_BASELINE = 1141.0


def git_sha() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).parent,
                check=True,
            ).stdout.strip()
        )
    except Exception:
        return "unknown"


def crawl_once(
    system, seeds, pages: int, config: CrawlerConfig, checkpoint_dir: Optional[str] = None
) -> dict:
    start = time.perf_counter()
    result = system.crawl(
        max_pages=pages, seeds=seeds, crawler_config=config, checkpoint_dir=checkpoint_dir
    )
    elapsed = time.perf_counter() - start
    fetched = result.pages_fetched()
    stats = {
        "pages": fetched,
        "seconds": round(elapsed, 4),
        "pages_per_sec": round(fetched / elapsed, 2) if elapsed > 0 else 0.0,
        "harvest_rate": round(result.harvest_rate(), 4),
        "fetch_overlap": round(result.crawler.engine.fetch_overlap_ratio(), 4),
        "prefetch_stale_ratio": round(result.crawler.engine.prefetch_stale_ratio(), 4),
        "stages": {
            stage: round(seconds, 4)
            for stage, seconds in result.crawler.engine.stage_timings.items()
        },
    }
    if checkpoint_dir is not None:
        snapshot = result.database.io_snapshot()
        stats["wal_bytes_written"] = int(snapshot["wal_bytes_written"])
        stats["wal_fsyncs"] = int(snapshot["wal_fsyncs"])
        stats["pages_flushed"] = int(snapshot["pages_flushed"])
        stats["segment_bytes_total"] = int(snapshot["segment_bytes_total"])
        stats["segment_bytes_live"] = int(snapshot["segment_bytes_live"])
        stats["segment_bytes_dead"] = int(snapshot["segment_bytes_dead"])
        stats["compactions_run"] = int(snapshot["compactions_run"])
        stats["compactions_prepared"] = int(snapshot["compactions_prepared"])
        stats["compactions_refreshed"] = int(snapshot["compactions_refreshed"])
        stats["bytes_reclaimed"] = int(snapshot["bytes_reclaimed"])
        checkpointer = result.crawler.engine.checkpointer
        stats["checkpoint_pause_s"] = (
            round(checkpointer.save_seconds, 4) if checkpointer is not None else 0.0
        )
        stats["checkpoint_pauses"] = (
            [round(pause, 4) for pause in checkpointer.pause_log]
            if checkpointer is not None
            else []
        )
        result.database.close()
    return stats


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_service_row(
    system,
    seeds,
    pages: int,
    distill_every: int,
    backend: str,
    batch_size: int,
    fetch_workers: int,
    jobs: int,
) -> dict:
    """The load-generator row: *jobs* concurrent crawls through the JobManager.

    Each tenant crawls ``pages // jobs`` pages with its own failure seed;
    the manager round-robins them over one shared fetch pool, so the row
    measures multiplexing overhead and the job-latency distribution the
    service delivers under K-tenant load.
    """
    pages_per_job = max(pages // jobs, 1)
    manager = JobManager(system, rounds_per_step=1)
    start = time.perf_counter()
    ids = []
    for tenant in range(jobs):
        # One config per job: the handle folds max_pages into it in place.
        config = CrawlerConfig(
            max_pages=pages_per_job,
            distill_every=distill_every,
            engine="batched",
            batch_size=batch_size,
            fetch_workers=fetch_workers,
            score_backend=backend,
            fetch_mode="threaded",
        )
        ids.append(
            manager.submit(
                JobSpec(
                    seeds=tuple(seeds),
                    max_pages=pages_per_job,
                    fetch_failure_seed=tenant,
                    crawler=config,
                    name=f"tenant-{tenant}",
                )
            )
        )
    manager.run_until_idle()
    elapsed = time.perf_counter() - start

    summaries = [manager.result_summary(job_id) for job_id in ids]
    fetched = sum(summary["pages_fetched"] for summary in summaries)
    stages: dict[str, float] = {}
    for job_id in ids:
        for stage, seconds in manager.stats(job_id)["stage_timings"].items():
            stages[stage] = stages.get(stage, 0.0) + seconds
    latencies = sorted(manager.latencies())
    return {
        "pages": fetched,
        "seconds": round(elapsed, 4),
        "pages_per_sec": round(fetched / elapsed, 2) if elapsed > 0 else 0.0,
        "harvest_rate": round(
            sum(summary["harvest_rate"] for summary in summaries) / len(summaries), 4
        ),
        "fetch_overlap": 0.0,
        "stages": {stage: round(seconds, 4) for stage, seconds in stages.items()},
        "jobs": jobs,
        "pages_per_job": pages_per_job,
        "jobs_per_sec": round(jobs / elapsed, 2) if elapsed > 0 else 0.0,
        "job_latency_p50_s": round(percentile(latencies, 0.50), 4),
        "job_latency_p99_s": round(percentile(latencies, 0.99), 4),
    }


def run_sharded_row(
    system,
    seeds,
    pages: int,
    distill_every: int,
    backend: str,
    batch_size: int,
    n_shards: int,
    runner: str,
) -> dict:
    """One ``sharded-N`` row: the workload under the shard fleet.

    The fleet is spawned and warmed (one ping round-trip per shard, so
    spawned workers have unpickled their payloads) before the clock
    starts: the row measures steady-state crawl throughput, not process
    start-up.
    """
    config = CrawlerConfig(
        max_pages=pages,
        distill_every=distill_every,
        engine="sharded",
        shards=n_shards,
        shard_runner=runner,
        batch_size=batch_size,
        score_backend=backend,
    )
    handle = system.start(JobSpec(seeds=tuple(seeds), max_pages=pages, crawler=config))
    handle.crawler.engine.runner.broadcast(("ping",))  # warm-up barrier
    start = time.perf_counter()
    result = handle.run()
    elapsed = time.perf_counter() - start
    fetched = result.pages_fetched()
    row = {
        "pages": fetched,
        "seconds": round(elapsed, 4),
        "pages_per_sec": round(fetched / elapsed, 2) if elapsed > 0 else 0.0,
        "harvest_rate": round(result.harvest_rate(), 4),
        "fetch_overlap": 0.0,
        "stages": {
            stage: round(seconds, 4)
            for stage, seconds in handle.crawler.engine.stage_timings.items()
        },
        "shards": n_shards,
        "shard_runner": runner,
    }
    handle.close()
    return row


def run_query_rows(
    system,
    seeds,
    pages: int,
    distill_every: int,
    backend: str,
    batch_size: int,
    fetch_workers: int,
    repeats: int,
) -> list[dict]:
    """The v9 graph-query rows: read latency on the store, indexed vs scan.

    One batched crawl populates a store; each query is then timed (best
    of several runs) under the index planner and again with the planner
    forced to the scan path.  ``pages_per_sec`` carries the indexed
    queries/sec so the ordinary regression gate covers query latency;
    ``identical`` pins the two planners to bit-identical result rows.
    """
    config = CrawlerConfig(
        max_pages=pages,
        distill_every=distill_every,
        engine="batched",
        batch_size=batch_size,
        fetch_workers=fetch_workers,
        score_backend=backend,
        fetch_mode="threaded",
    )
    result = system.crawl(max_pages=pages, seeds=seeds, crawler_config=config)
    db = result.database

    # A selective reachability root: the newest visited page whose
    # reachable set stays small — the representative "what can this page
    # still reach" monitoring query (a bulk root degenerates to the scan).
    link_graph = db.table("LINK").indexes["link_graph"]
    crawl_rows = db.table("CRAWL").row_count
    visited = db.sql("select oid from CRAWL where status = 'visited' order by oid desc")
    root = visited[-1]["oid"]
    for row in visited:  # newest first: late pages reach the least
        if len(link_graph.reachable_ids(row["oid"])) <= max(crawl_rows // 10, 16):
            root = row["oid"]
            break

    probe = sorted(row["oid"] for row in visited[:12])
    in_list = ", ".join(f":k{i}" for i in range(len(probe)))
    queries = {
        "query-reach": (
            "select oid from CRAWL where reachable_from(oid, :root, 'link_graph')",
            {"root": root},
        ),
        "query-join": (
            "select C.oid, L.oid_dst from CRAWL C, LINK L "
            f"where C.oid = L.oid_src and C.oid in ({in_list})",
            {f"k{i}": oid for i, oid in enumerate(probe)},
        ),
    }

    rows = []
    saved = os.environ.get(PLANNER_MODE_ENV)
    try:
        for mode_name, (sql, params) in queries.items():
            timings: dict[str, float] = {}
            answers: dict[str, list] = {}
            for planner in ("index", "scan"):
                os.environ[PLANNER_MODE_ENV] = planner
                # Indexed latencies are sub-millisecond: amortise each
                # sample over an inner loop sized to ~50 ms of work, so
                # the best-of-samples figure is stable enough for the
                # 20% regression gate rather than timer-noise roulette.
                start = time.perf_counter()
                answers[planner] = db.sql(sql, params)
                warmup = time.perf_counter() - start
                inner = max(1, min(200, int(0.05 / max(warmup, 1e-6))))
                best_s = warmup
                for _ in range(max(repeats, 5)):
                    start = time.perf_counter()
                    for _ in range(inner):
                        db.sql(sql, params)
                    best_s = min(best_s, (time.perf_counter() - start) / inner)
                timings[planner] = best_s
            rows.append(
                {
                    "mode": mode_name,
                    "backend": backend,
                    "transport": "simulated",
                    "fetch_mode": "threaded",
                    "prefetch": False,
                    "pages": len(answers["index"]),
                    "seconds": round(timings["index"], 6),
                    "pages_per_sec": round(1.0 / timings["index"], 2),
                    "fetch_overlap": 0.0,
                    "stages": {},
                    "indexed_ms": round(timings["index"] * 1000, 3),
                    "scan_ms": round(timings["scan"] * 1000, 3),
                    "rows_returned": len(answers["index"]),
                    "identical": answers["index"] == answers["scan"],
                    "query_speedup": round(timings["scan"] / timings["index"], 2),
                }
            )
    finally:
        if saved is None:
            os.environ.pop(PLANNER_MODE_ENV, None)
        else:
            os.environ[PLANNER_MODE_ENV] = saved
    return rows


def run_throughput(
    scale: float,
    pages: int,
    distill_every: int,
    seed: int,
    batch_size: int = BATCH_SIZE,
    fetch_workers: int = FETCH_WORKERS,
    repeats: int = 1,
    durable: bool = False,
    compact: bool = False,
    backends: Sequence[str] = BACKENDS,
    wal_fsync_batch: int = 0,
    transport: str = "simulated",
    latency_ms: float = 5.0,
    max_inflight: int = 0,
    service: bool = False,
    service_jobs: int = 8,
    shards: Sequence[int] = (),
    shard_runner: str = "process",
) -> dict:
    """Crawl serial vs. batched-per-backend (vs. durable, vs. latency) and return the payload.

    The serial/batched baseline rows always run on the simulated
    transport (the committed-baseline workload); ``transport="latency"``
    *adds* the fetch-overlap comparison rows — the same batched crawl
    through a ``latency_ms``-mean latency transport, threaded vs. async.
    """
    workload = build_crawl_workload(seed=seed, scale=scale, max_pages=pages)
    system = workload.system
    seeds = system.default_seeds()

    def one(config: CrawlerConfig, persistent: bool = False) -> dict:
        if persistent:
            # Each repeat crawls into its own fresh directory: a reused
            # one would hold the previous run's checkpoint and refuse.
            with tempfile.TemporaryDirectory(prefix="bench-durable-") as tmp:
                return crawl_once(system, seeds, pages, config, checkpoint_dir=f"{tmp}/db")
        return crawl_once(system, seeds, pages, config)

    def pick(runs: Sequence[dict]) -> dict:
        chosen = min(runs, key=lambda r: r["seconds"])
        if chosen.get("checkpoint_pauses"):
            # The reported pause is a sum of a dozen-odd sub-50ms pauses,
            # so one scheduler spike anywhere poisons a whole run's total
            # and the fastest run overall is not reliably the run with
            # the least-disturbed pause measurement.  The repeats crawl
            # identically, checkpoint for checkpoint — so take each
            # checkpoint's floor across repeats and sum those: the
            # standard min-estimator applied per component, which no
            # single noisy run can inflate.
            chosen["checkpoint_pause_s"] = round(
                sum(min(group) for group in zip(*(r["checkpoint_pauses"] for r in runs))),
                4,
            )
        for run in runs:
            run.pop("checkpoint_pauses", None)
        return chosen

    def best(config: CrawlerConfig, persistent: bool = False) -> dict:
        return pick([one(config, persistent) for _ in range(repeats)])

    def tagged(mode: str, backend: str, row: dict, transport_name: str = "simulated",
               fetch_mode: str = "threaded", prefetch: bool = False) -> dict:
        return {
            "mode": mode,
            "backend": backend,
            "transport": transport_name,
            "fetch_mode": fetch_mode,
            "prefetch": prefetch,
            **row,
        }

    # The baseline rows pin fetch_mode="threaded" explicitly: otherwise a
    # REPRO_FETCH_MODE=async environment would silently measure the async
    # pipeline under rows tagged (and gated) as the threaded path.
    serial = best(
        CrawlerConfig(
            max_pages=pages,
            distill_every=distill_every,
            score_backend="python",
            fetch_mode="threaded",
        )
    )
    results = [tagged("serial", "python", serial)]
    by_backend = {}
    for backend in backends:
        batched = best(
            CrawlerConfig(
                max_pages=pages,
                distill_every=distill_every,
                engine="batched",
                batch_size=batch_size,
                fetch_workers=fetch_workers,
                score_backend=backend,
                fetch_mode="threaded",
            )
        )
        by_backend[backend] = batched
        results.append(tagged("batched", backend, batched))

    async_speedup = None
    prefetch_speedup = None
    if transport == "latency":
        overlap_backend = "numpy" if "numpy" in backends else backends[0]
        by_fetch_mode = {}
        # The prefetch flag is pinned explicitly in every overlap row —
        # otherwise a REPRO_PREFETCH=1 environment would silently measure
        # speculation under rows tagged (and gated) as the plain pipeline.
        for fetch_mode, with_prefetch in (
            ("threaded", False),
            ("async", False),
            ("async", True),
        ):
            row = best(
                CrawlerConfig(
                    max_pages=pages,
                    distill_every=distill_every,
                    engine="batched",
                    batch_size=batch_size,
                    fetch_workers=fetch_workers,
                    score_backend=overlap_backend,
                    fetch_mode=fetch_mode,
                    prefetch=with_prefetch,
                    max_inflight=max_inflight,
                    transport="latency",
                    transport_options={"mean_latency_ms": latency_ms, "seed": seed},
                )
            )
            by_fetch_mode[(fetch_mode, with_prefetch)] = row
            results.append(
                tagged("batched", overlap_backend, row, "latency", fetch_mode, with_prefetch)
            )
        if by_fetch_mode[("threaded", False)]["pages_per_sec"]:
            async_speedup = round(
                by_fetch_mode[("async", False)]["pages_per_sec"]
                / by_fetch_mode[("threaded", False)]["pages_per_sec"],
                2,
            )
        if by_fetch_mode[("async", False)]["pages_per_sec"]:
            prefetch_speedup = round(
                by_fetch_mode[("async", True)]["pages_per_sec"]
                / by_fetch_mode[("async", False)]["pages_per_sec"],
                2,
            )
    if durable:
        # The same batched crawl, persisted: every write WAL-logged, dirty
        # pages flushed on eviction, and a checkpoint every 200 fetches.
        durable_backend = "numpy" if "numpy" in backends else backends[0]
        durable_run = best(
            CrawlerConfig(
                max_pages=pages,
                distill_every=distill_every,
                engine="batched",
                batch_size=batch_size,
                fetch_workers=fetch_workers,
                score_backend=durable_backend,
                fetch_mode="threaded",
                checkpoint_every=200,
                wal_fsync_batch=wal_fsync_batch,
            ),
            persistent=True,
        )
        results.append(tagged("durable", durable_backend, durable_run))

    if compact:
        # The rewrite-heavy compaction row: frequent checkpoints and an
        # aggressive garbage threshold, so every checkpoint rewrites the
        # segment file down to its live pages.  bytes_reclaimed measures
        # the disk the compactor claws back; checkpoint_pause_s measures
        # what the crawl pays for it.
        compact_backend = "numpy" if "numpy" in backends else backends[0]
        inline_compact_config = CrawlerConfig(
            max_pages=pages,
            distill_every=distill_every,
            engine="batched",
            batch_size=batch_size,
            fetch_workers=fetch_workers,
            score_backend=compact_backend,
            fetch_mode="threaded",
            checkpoint_every=100,
            wal_fsync_batch=wal_fsync_batch,
            compact_every=1,
            compact_min_garbage_ratio=0.05,
        )
        # The same rewrite-heavy workload with the rewrite moved off the
        # checkpoint pause: a background worker prepares the compacted
        # segment between checkpoints and the checkpoint merely adopts it
        # (before its dirty-page flush, so only the mid-interval residual
        # needs folding).  Same policy knobs, so checkpoint_pause_s
        # isolates what inline rewriting costs.
        background_compact_config = CrawlerConfig(
            max_pages=pages,
            distill_every=distill_every,
            engine="batched",
            batch_size=batch_size,
            fetch_workers=fetch_workers,
            score_backend=compact_backend,
            fetch_mode="threaded",
            checkpoint_every=100,
            storage=StorageConfig(
                wal_fsync_batch=wal_fsync_batch,
                compact_every=1,
                compact_min_garbage_ratio=0.05,
                background_compaction=True,
                compact_wal_bytes=64 * 1024,
            ),
        )
        # These two rows exist to be compared against each other, and the
        # host's speed drifts on the same time scale as a row's full
        # repeat block — back-to-back blocks would hand one row a slower
        # regime than the other.  Interleaving the repeats samples both
        # modes under the same noise, so the pause comparison reflects
        # the mechanism rather than which row drew the quiet window.
        inline_runs, background_runs = [], []
        for _ in range(max(repeats, 3)):
            inline_runs.append(one(inline_compact_config, persistent=True))
            background_runs.append(one(background_compact_config, persistent=True))
        results.append(tagged("compact", compact_backend, pick(inline_runs)))
        results.append(tagged("compact-bg", compact_backend, pick(background_runs)))

    if service:
        # The multi-tenant load-generator row: K concurrent jobs through
        # the JobManager's shared fetch pool, reported with job-latency
        # percentiles.  Uses the fastest backend in the matrix (the
        # service's deployment configuration).
        service_backend = "numpy" if "numpy" in backends else backends[0]
        service_run = run_service_row(
            system,
            seeds,
            pages,
            distill_every,
            backend=service_backend,
            batch_size=batch_size,
            fetch_workers=fetch_workers,
            jobs=service_jobs,
        )
        results.append(tagged("service", service_backend, service_run))

    shard_scaling = None
    if shards:
        # One sharded-N row per shard count, same workload, fastest backend.
        shard_backend = "numpy" if "numpy" in backends else backends[0]
        by_shards = {}
        for n_shards in shards:
            row = run_sharded_row(
                system,
                seeds,
                pages,
                distill_every,
                backend=shard_backend,
                batch_size=batch_size,
                n_shards=n_shards,
                runner=shard_runner,
            )
            by_shards[n_shards] = row
            results.append(tagged(f"sharded-{n_shards}", shard_backend, row))
        if 1 in by_shards and len(by_shards) > 1 and by_shards[1]["pages_per_sec"]:
            widest = by_shards[max(by_shards)]
            shard_scaling = round(
                widest["pages_per_sec"] / by_shards[1]["pages_per_sec"], 2
            )

    # The v9 graph-query rows: read latency on a freshly-crawled store,
    # index planner vs. the scan-planner baseline.
    query_backend = "numpy" if "numpy" in backends else backends[0]
    query_rows = run_query_rows(
        system,
        seeds,
        pages,
        distill_every,
        backend=query_backend,
        batch_size=batch_size,
        fetch_workers=fetch_workers,
        repeats=repeats,
    )
    results.extend(query_rows)
    by_query = {row["mode"]: row for row in query_rows}
    query_speedup = by_query["query-reach"]["query_speedup"]
    query_join_speedup = by_query["query-join"]["query_speedup"]

    reference = by_backend.get("python", next(iter(by_backend.values())))
    speedup = (
        round(reference["pages_per_sec"] / serial["pages_per_sec"], 2)
        if serial["pages_per_sec"]
        else 0.0
    )
    columnar = by_backend.get("numpy")
    columnar_speedup = (
        round(columnar["pages_per_sec"] / reference["pages_per_sec"], 2)
        if columnar and reference["pages_per_sec"]
        else None
    )
    return {
        "bench": "engine_throughput",
        "schema_version": 9,
        "git_sha": git_sha(),
        "config": {
            "scale": scale,
            "pages": pages,
            "distill_every": distill_every,
            "seed": seed,
            "batch_size": batch_size,
            "fetch_workers": fetch_workers,
            "repeats": repeats,
            "durable": durable,
            "compact": compact,
            "backends": list(backends),
            "wal_fsync_batch": wal_fsync_batch,
            "transport": transport,
            "latency_ms": latency_ms,
            "max_inflight": max_inflight,
            "service": service,
            "service_jobs": service_jobs,
            "shards": list(shards),
            "shard_runner": shard_runner,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "speedup": speedup,
        "columnar_speedup": columnar_speedup,
        "async_speedup": async_speedup,
        "prefetch_speedup": prefetch_speedup,
        "shard_scaling": shard_scaling,
        "query_speedup": query_speedup,
        "query_join_speedup": query_join_speedup,
    }


def write_payload(payload: dict, output: Path) -> None:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def check_regression(
    payload: dict, baseline: dict, max_drop: float, relative: bool = False
) -> list[str]:
    """Rows whose pages/sec dropped more than *max_drop* vs. the baseline.

    Rows are matched by (mode, backend, transport, fetch_mode, prefetch);
    pre-v3 baselines carry no backend field and default to "python",
    pre-v4 baselines carry no transport/fetch_mode and default to
    "simulated"/"threaded", pre-v8 baselines carry no prefetch tag and
    default to False.  Rows missing on either side are skipped (configs
    evolve), so the gate only compares like with like.

    ``relative=True`` normalises every row by its own payload's
    serial[python] pages/sec before comparing, so absolute machine speed
    cancels out — required when the gate runs on different hardware than
    produced the baseline (e.g. CI runners vs. the reference container).
    The serial row itself is then skipped (its ratio is 1 by definition),
    and so are latency-transport rows: their wall clock is dominated by
    fixed injected sleeps, which do *not* scale with CPU speed, so
    dividing them by the machine's serial throughput would fail faster
    machines (and mask regressions on slower ones).  Sharded rows are
    skipped for the symmetric reason: their throughput scales with the
    machine's *core count*, which serial normalisation cannot cancel
    (the single-core reference baseline would fail every multi-core
    runner's sharded-1 row and vice versa); the sharded floor is the
    dedicated shard_scaling gate instead.
    """

    def indexed(results) -> dict:
        return {
            (
                row["mode"],
                row.get("backend", "python"),
                row.get("transport", "simulated"),
                row.get("fetch_mode", "threaded"),
                row.get("prefetch", False),
            ): row
            for row in results
        }

    SERIAL_KEY = ("serial", "python", "simulated", "threaded", False)

    def scale_of(rows: dict) -> float:
        serial = rows.get(SERIAL_KEY)
        return serial["pages_per_sec"] if serial else 1.0

    failures = []
    old_rows = indexed(baseline.get("results", []))
    new_rows = indexed(payload["results"])
    old_scale = scale_of(old_rows) if relative else 1.0
    new_scale = scale_of(new_rows) if relative else 1.0
    for key, row in new_rows.items():
        if relative and (
            key == SERIAL_KEY
            or key[2] != "simulated"
            or key[0].startswith("sharded-")
        ):
            continue
        old = old_rows.get(key)
        if old is None or not old.get("pages_per_sec"):
            continue
        new_value = row["pages_per_sec"] / new_scale
        old_value = old["pages_per_sec"] / old_scale
        if new_value < (1.0 - max_drop) * old_value:
            unit = "x serial" if relative else "pages/sec"
            label = f"{key[0]}[{key[1]}]"
            if key[2:4] != ("simulated", "threaded"):
                label += f"[{key[2]}/{key[3]}]"
            if key[4]:
                label += "[prefetch]"
            failures.append(
                f"{label}: {round(new_value, 2)} {unit} is more than "
                f"{max_drop:.0%} below the committed {round(old_value, 2)}"
            )
    return failures


# -- pytest entry point --------------------------------------------------------------
def test_engine_throughput(bench_recorder, pytestconfig):
    """Full-scale serial/batched/backend comparison; records BENCH_engine.json.

    Two kinds of acceptance:

    * machine-independent ratios measured in this run (robust to the
      single-core container's load-dependent absolute speed);
    * the committed ``BENCH_engine.json`` must certify the v3 absolute
      criterion — numpy-backend batched >= 3x the PR-2 1141 pages/sec —
      and this run must land within the regression gate's 20% of it.
    """
    payload = run_throughput(
        **FULL,
        repeats=3,
        service=True,
        shards=(1, 2, 4),
        transport="latency",
        compact=True,
    )
    bench_recorder(payload)
    rows = {
        (r["mode"], r["backend"]): r
        for r in payload["results"]
        if r.get("transport", "simulated") == "simulated"
    }
    serial = rows[("serial", "python")]
    batched = rows[("batched", "python")]
    columnar = rows[("batched", "numpy")]
    assert serial["pages"] == batched["pages"] == columnar["pages"] == FULL["pages"]
    # Continuity acceptance (v2): the batched pipeline beats the serial loop.
    assert payload["speedup"] >= 1.3, payload
    # Columnar acceptance, ratio form: the numpy backend multiplies the
    # python batched pipeline's throughput on the same box, same run.
    assert payload["columnar_speedup"] >= 1.7, payload
    committed_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    committed = json.loads(committed_path.read_text())
    committed_columnar = next(
        row
        for row in committed["results"]
        if row["mode"] == "batched"
        and row.get("backend") == "numpy"
        and row.get("transport", "simulated") == "simulated"
    )
    # Columnar acceptance, absolute form, certified by the committed run.
    # Re-baselined to 2.5x in v7 (the v3 3.0x certification was measured
    # on a faster container than later baselines) and to 2.0x in v8: the
    # reference container's run-to-run throughput now swings ~2x with
    # host load, so a tight absolute floor is a coin flip — the absolute
    # form only fences gross degradation, while the committed *ratio*
    # below and the in-run ratio gates above carry the
    # machine-independent protection.
    assert committed_columnar["pages_per_sec"] >= 2.0 * PR2_BATCHED_BASELINE, committed
    # Slightly below the in-run 1.7 gate: the recorder writes the artifact
    # even for a failing run, so a committed-side threshold at the exact
    # in-run floor would wedge every later run behind one noisy miss.
    assert committed["columnar_speedup"] >= 1.6, committed["columnar_speedup"]
    # Service acceptance (v6): the multi-tenant row exists and reports the
    # job-latency percentiles the crawl service is benchmarked on.
    service_row = next(row for row in payload["results"] if row["mode"] == "service")
    assert service_row["jobs"] == 8
    assert 0 < service_row["job_latency_p50_s"] <= service_row["job_latency_p99_s"]
    assert 0 < service_row["pages"] <= service_row["jobs"] * service_row["pages_per_job"]
    # Sharded acceptance (v7): one row per shard count, every one crawling
    # the full budget (bit-identical content is pinned by the test suite;
    # here the rows just have to exist and finish).  The scaling gate only
    # binds where the hardware can express it.
    sharded_rows = {
        row["shards"]: row
        for row in payload["results"]
        if row["mode"].startswith("sharded-")
    }
    assert set(sharded_rows) == {1, 2, 4}
    assert all(row["pages"] == FULL["pages"] for row in sharded_rows.values())
    if (os.cpu_count() or 1) >= 4:
        assert payload["shard_scaling"] >= 2.5, payload["shard_scaling"]
    # Prefetch acceptance (v8): with 5 ms injected latency, cross-round
    # speculation must keep the pipeline saturated — at least 75% of round
    # processing runs while fetches are in flight — while the plain async
    # pipeline drains at every round boundary and can't reach that.
    overlap_rows = {
        (row["fetch_mode"], row["prefetch"]): row
        for row in payload["results"]
        if row.get("transport") == "latency"
    }
    prefetch_row = overlap_rows[("async", True)]
    assert prefetch_row["fetch_overlap"] >= 0.75, prefetch_row
    assert 0.0 <= prefetch_row["prefetch_stale_ratio"] < 1.0, prefetch_row
    assert payload["prefetch_speedup"] is not None
    # Background-compaction acceptance (v8): the worker still claws back
    # dead segment bytes, but the rewrite no longer rides the checkpoint
    # pause — the adopting checkpoints must pause strictly less than the
    # inline checkpoint-time compactor on the same policy and workload.
    compact_rows = {
        row["mode"]: row
        for row in payload["results"]
        if row["mode"].startswith("compact")
    }
    inline, background = compact_rows["compact"], compact_rows["compact-bg"]
    assert background["bytes_reclaimed"] > 0, background
    assert background["compactions_prepared"] >= background["compactions_run"]
    assert background["checkpoint_pause_s"] < inline["checkpoint_pause_s"], (
        background["checkpoint_pause_s"],
        inline["checkpoint_pause_s"],
    )
    # Graph-query acceptance (v9): indexed reachability and the selective
    # CRAWL⋈LINK join must beat the scan-planner baseline >= 3x on the
    # full workload, returning bit-identical rows.
    query_rows = {
        row["mode"]: row
        for row in payload["results"]
        if row["mode"].startswith("query-")
    }
    assert set(query_rows) == {"query-reach", "query-join"}
    assert all(row["identical"] for row in query_rows.values()), query_rows
    assert all(row["rows_returned"] > 0 for row in query_rows.values()), query_rows
    assert payload["query_speedup"] >= 3.0, query_rows["query-reach"]
    assert payload["query_join_speedup"] >= 3.0, query_rows["query-join"]
    # And this run must not have drifted out of the (machine-normalised)
    # regression gate.
    drift = check_regression(payload, committed, max_drop=0.2, relative=True)
    assert not drift, drift


# -- CLI entry point ------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke configuration")
    parser.add_argument("--scale", type=float, default=None, help="synthetic web scale factor")
    parser.add_argument("--pages", type=int, default=None, help="crawl budget per run")
    parser.add_argument("--distill-every", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--batch", type=int, default=BATCH_SIZE, help="batched-mode round size K")
    parser.add_argument("--workers", type=int, default=FETCH_WORKERS, help="fetch-stage threads")
    parser.add_argument("--repeats", type=int, default=1, help="take the best of N runs per mode")
    parser.add_argument(
        "--backend",
        default=",".join(BACKENDS),
        help="comma-separated scoring backends to run batched rows for (python,numpy)",
    )
    parser.add_argument(
        "--transport",
        choices=("simulated", "latency"),
        default="simulated",
        help="'latency' adds the fetch-overlap rows: the batched crawl through a "
        "latency-injecting transport, threaded vs. async fetch pipeline",
    )
    parser.add_argument(
        "--latency-ms",
        type=float,
        default=5.0,
        help="mean injected per-fetch latency for --transport latency (default 5 ms)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        help="async pipeline in-flight window for the latency rows (0 = round size)",
    )
    parser.add_argument(
        "--durable",
        action="store_true",
        help="also crawl on a durable (WAL + checkpoint) database and report the overhead",
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="also run the rewrite-heavy compaction row (frequent checkpoints, "
        "aggressive compaction) reporting bytes_reclaimed and checkpoint pause",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="also run the multi-tenant service row: --service-jobs concurrent "
        "crawl jobs through the JobManager, reporting p50/p99 job latency",
    )
    parser.add_argument(
        "--service-jobs",
        type=int,
        default=8,
        help="concurrent tenants for the --service row (default 8)",
    )
    parser.add_argument(
        "--shards",
        default="",
        help="comma-separated shard counts (e.g. 1,2,4): one engine='sharded' "
        "row each, plus the shard_scaling metric (widest count vs. 1)",
    )
    parser.add_argument(
        "--shard-runner",
        choices=("process", "inprocess"),
        default="process",
        help="shard fleet runner for --shards rows (default: multiprocessing)",
    )
    parser.add_argument(
        "--wal-fsync-batch",
        type=int,
        default=0,
        help="WAL group-commit batch for the --durable row (0 = checkpoint-only fsync)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed BENCH_engine.json to gate against (exit 1 on regression)",
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.2,
        help="maximum tolerated fractional pages/sec drop vs. --baseline (default 0.2)",
    )
    parser.add_argument(
        "--baseline-relative",
        action="store_true",
        help="normalise rows by each run's serial pages/sec before gating "
        "(use when the baseline was produced on different hardware)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_engine.json"), help="result JSON path"
    )
    args = parser.parse_args(argv)

    defaults = QUICK if args.quick else FULL
    payload = run_throughput(
        scale=args.scale if args.scale is not None else defaults["scale"],
        pages=args.pages if args.pages is not None else defaults["pages"],
        distill_every=(
            args.distill_every if args.distill_every is not None else defaults["distill_every"]
        ),
        seed=args.seed if args.seed is not None else defaults["seed"],
        batch_size=args.batch,
        fetch_workers=args.workers,
        repeats=args.repeats,
        durable=args.durable,
        compact=args.compact,
        backends=tuple(b.strip() for b in args.backend.split(",") if b.strip()),
        wal_fsync_batch=args.wal_fsync_batch,
        transport=args.transport,
        latency_ms=args.latency_ms,
        max_inflight=args.max_inflight,
        service=args.service,
        service_jobs=args.service_jobs,
        shards=tuple(int(n) for n in args.shards.split(",") if n.strip()),
        shard_runner=args.shard_runner,
    )
    write_payload(payload, args.output)
    for row in payload["results"]:
        stages = "  ".join(f"{k}={v:.3f}s" for k, v in row["stages"].items())
        extra = (
            f"  wal={row['wal_bytes_written']}B fsyncs={row['wal_fsyncs']} "
            f"flushed={row['pages_flushed']}p"
            if "wal_bytes_written" in row
            else ""
        )
        if row.get("compactions_run"):
            extra += (
                f"  compactions={row['compactions_run']} "
                f"reclaimed={row['bytes_reclaimed']}B "
                f"seg={row['segment_bytes_total']}B "
                f"ckpt_pause={row['checkpoint_pause_s']}s"
            )
        label = f"{row['mode']:>8}[{row['backend']}]"
        if (row["transport"], row["fetch_mode"]) != ("simulated", "threaded"):
            label += f"[{row['transport']}/{row['fetch_mode']}]"
        if row.get("prefetch"):
            label += "[prefetch]"
        if row["fetch_overlap"]:
            extra += f"  overlap={row['fetch_overlap']:.0%}"
        if row.get("prefetch") and row.get("prefetch_stale_ratio") is not None:
            extra += f"  stale={row['prefetch_stale_ratio']:.0%}"
        if "jobs" in row:
            extra += (
                f"  jobs={row['jobs']}x{row['pages_per_job']}p "
                f"({row['jobs_per_sec']}/s) "
                f"latency p50={row['job_latency_p50_s']}s "
                f"p99={row['job_latency_p99_s']}s"
            )
        if "shards" in row:
            extra += f"  shards={row['shards']} ({row['shard_runner']})"
        if "indexed_ms" in row:
            extra += (
                f"  indexed={row['indexed_ms']}ms scan={row['scan_ms']}ms "
                f"({row['query_speedup']}x, {row['rows_returned']} rows, "
                f"identical={row['identical']})"
            )
        print(
            f"{label}: {row['pages']} pages in {row['seconds']}s "
            f"({row['pages_per_sec']} pages/sec)  {stages}{extra}"
        )
    line = f"speedup : {payload['speedup']}x"
    if payload["columnar_speedup"] is not None:
        line += f"  columnar: {payload['columnar_speedup']}x"
    if payload["async_speedup"] is not None:
        line += f"  async: {payload['async_speedup']}x"
    if payload["prefetch_speedup"] is not None:
        line += f"  prefetch: {payload['prefetch_speedup']}x"
    if payload["shard_scaling"] is not None:
        line += f"  shard_scaling: {payload['shard_scaling']}x"
    line += (
        f"  query: {payload['query_speedup']}x"
        f"  query_join: {payload['query_join_speedup']}x"
    )
    print(f"{line}  ->  {args.output}")

    # The graph-query gate: on the full workload (the acceptance scale)
    # the index planner must beat the scan baseline >= 3x on both query
    # rows and return bit-identical rows.  Quick runs record the honest
    # small-store numbers and skip the floor.
    query_rows = [r for r in payload["results"] if r["mode"].startswith("query-")]
    if any(not r["identical"] for r in query_rows):
        print("REGRESSION: index-planner rows differ from the scan baseline")
        return 1
    if not args.quick:
        for key in ("query_speedup", "query_join_speedup"):
            if payload[key] < 3.0:
                print(f"REGRESSION: {key} {payload[key]}x is below the 3.0x gate")
                return 1

    # The sharded smoke gate: N workers must actually scale where the
    # hardware has the cores to show it.  Single-core containers (the
    # reference environment) record the honest ~1x and skip.
    if payload["shard_scaling"] is not None and (os.cpu_count() or 1) >= 4:
        if payload["shard_scaling"] < 2.0:
            print(
                f"REGRESSION: shard_scaling {payload['shard_scaling']}x is below "
                "the 2.0x smoke gate"
            )
            return 1

    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        workload_keys = ("scale", "pages", "distill_every", "seed", "batch_size", "fetch_workers")
        ours = {k: payload["config"].get(k) for k in workload_keys}
        theirs = {k: baseline.get("config", {}).get(k) for k in workload_keys}
        if ours != theirs:
            print(f"baseline gate skipped: workload config differs ({ours} vs {theirs})")
            return 0
        failures = check_regression(
            payload, baseline, args.max_drop, relative=args.baseline_relative
        )
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
