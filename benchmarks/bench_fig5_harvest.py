"""Figure 5 benchmark: harvest rate of the focused crawler vs. the unfocused baseline.

Regenerates both panels of paper Figure 5.  The timed quantity is one
full crawl; the harvest-rate series and averages are attached as
``extra_info`` and asserted to have the paper's shape (the focused
crawler sustains its harvest rate, the unfocused baseline decays).

The focused panel honours the ``--batch``/``--workers`` sweep options,
so the batched engine's harvest can be compared against serial::

    pytest benchmarks/bench_fig5_harvest.py --batch 8 --workers 8
"""

import pytest

from repro.core import metrics


@pytest.mark.benchmark(group="fig5-harvest")
def test_fig5_focused_crawl_harvest(
    benchmark, crawl_workload, bench_crawl_pages, engine_crawler_config
):
    BENCH_CRAWL_PAGES = bench_crawl_pages
    system = crawl_workload.system
    seeds = system.default_seeds()

    def run_focused():
        return system.crawl(
            max_pages=BENCH_CRAWL_PAGES, seeds=seeds, crawler_config=engine_crawler_config
        )

    result = benchmark.pedantic(run_focused, rounds=1, iterations=1)
    harvest = result.harvest_rate()
    tail = metrics.average_harvest_rate(result.trace, skip_first=BENCH_CRAWL_PAGES // 2)
    benchmark.extra_info["pages_fetched"] = result.pages_fetched()
    benchmark.extra_info["average_harvest_rate"] = round(harvest, 4)
    benchmark.extra_info["tail_harvest_rate"] = round(tail, 4)
    benchmark.extra_info["ground_truth_precision"] = round(result.ground_truth_precision(), 4)
    benchmark.extra_info["batch_size"] = engine_crawler_config.batch_size
    benchmark.extra_info["fetch_workers"] = engine_crawler_config.fetch_workers
    # Paper: "on an average, every second page is relevant" — we accept the
    # same order of magnitude at simulation scale.
    assert harvest > 0.25
    assert tail > 0.15


@pytest.mark.benchmark(group="fig5-harvest")
def test_fig5_unfocused_crawl_decays(benchmark, crawl_workload, bench_crawl_pages):
    BENCH_CRAWL_PAGES = bench_crawl_pages
    system = crawl_workload.system
    seeds = system.default_seeds()

    def run_unfocused():
        return system.crawl(max_pages=BENCH_CRAWL_PAGES, seeds=seeds, focused=False)

    result = benchmark.pedantic(run_unfocused, rounds=1, iterations=1)
    series = metrics.harvest_series(result.trace, window=100)
    early = series[min(99, len(series) - 1)][1]
    late = metrics.average_harvest_rate(result.trace, skip_first=BENCH_CRAWL_PAGES // 2)
    benchmark.extra_info["average_harvest_rate"] = round(result.harvest_rate(), 4)
    benchmark.extra_info["harvest_at_100"] = round(early, 4)
    benchmark.extra_info["tail_harvest_rate"] = round(late, 4)
    # Paper: the standard crawler "is completely lost within the next hundred
    # page fetches: the relevance goes quickly toward zero."
    assert early > 0.4          # it starts out fine (same seeds)...
    assert late < early * 0.6   # ...and then loses its way.


@pytest.mark.benchmark(group="fig5-harvest")
def test_fig5_stagnation_fix(benchmark):
    """The §3.7 mutual-funds anecdote: marking the parent topic good recovers the crawl."""
    from repro.experiments.fig5_harvest import run_stagnation_experiment

    result = benchmark.pedantic(
        lambda: run_stagnation_experiment(seed=7, scale=0.3, max_pages=250),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["harvest_before_fix"] = round(result.before_harvest, 4)
    benchmark.extra_info["harvest_after_fix"] = round(result.after_harvest, 4)
    benchmark.extra_info["dominant_topic_before_fix"] = result.before_dominant_topic
    assert result.improved
