"""Figure 7 benchmark: distance from the seed set to the best authorities.

Regenerates paper Figure 7: after a fixed crawl budget, the histogram of
shortest *crawl-found* link distances from the seed set to the top-100
authorities, plus the list of top hubs.
"""

import pytest

from repro.experiments.fig7_distance import run_distance_experiment


@pytest.mark.benchmark(group="fig7-distance")
def test_fig7_authorities_found_far_from_seeds(benchmark, crawl_workload, bench_crawl_pages):
    BENCH_CRAWL_PAGES = bench_crawl_pages

    def run():
        return run_distance_experiment(
            workload=crawl_workload, max_pages=BENCH_CRAWL_PAGES, top_authorities=100
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["distance_histogram"] = {
        str(k): v for k, v in result.histogram.items()
    }
    benchmark.extra_info["max_distance"] = result.max_distance
    benchmark.extra_info["mass_beyond_two_links"] = round(result.mass_beyond_two, 4)
    benchmark.extra_info["top_hubs"] = [url for url, _ in result.top_hubs[:8]]
    # Paper: excellent resources are found well beyond the immediate
    # neighbourhood of the seed set (up to 12–15 links on the real web).
    assert result.max_distance >= 3
    assert result.mass_beyond_two > 0.05
    assert result.top_hubs
