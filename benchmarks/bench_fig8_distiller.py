"""Figure 8(d) benchmark: distillation as per-edge index lookups vs. one join.

The same crawl graph (CRAWL + weighted LINK tables) is distilled twice:
once with the naive edge-at-a-time walk that looks up and updates the
endpoint scores through indexes, and once with the set-oriented SQL of
paper Figure 4.  The paper reports the join approach to be about 3×
faster; both must produce identical hub/authority rankings.
"""

import pytest

from repro.distiller.db_distiller import IndexLookupDistiller, JoinDistiller
from repro.experiments import fig8_io

ITERATIONS = 3


@pytest.fixture(scope="module")
def distillation_fixture():
    return fig8_io.build_distillation_fixture(seed=7, buffer_pool_pages=96)


@pytest.mark.benchmark(group="fig8d-distillation")
def test_fig8d_index_lookup_distillation(benchmark, distillation_fixture):
    database = distillation_fixture.lookup_db

    def run():
        database.clear_cache()
        database.reset_stats()
        distiller = IndexLookupDistiller(database, rho=0.1)
        distiller.run(iterations=ITERATIONS)
        return distiller

    distiller = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_io_cost"] = round(database.stats.simulated_cost(), 1)
    benchmark.extra_info["scan_cost"] = round(distiller.cost.scan_cost, 1)
    benchmark.extra_info["lookup_cost"] = round(distiller.cost.lookup_cost, 1)
    benchmark.extra_info["update_cost"] = round(distiller.cost.update_cost, 1)


@pytest.mark.benchmark(group="fig8d-distillation")
def test_fig8d_join_distillation(benchmark, distillation_fixture):
    database = distillation_fixture.join_db

    def run():
        database.clear_cache()
        database.reset_stats()
        distiller = JoinDistiller(database, rho=0.1)
        distiller.run(iterations=ITERATIONS)
        return distiller

    distiller = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_io_cost"] = round(database.stats.simulated_cost(), 1)
    benchmark.extra_info["join_cost"] = round(distiller.cost.join_cost, 1)


@pytest.mark.benchmark(group="fig8d-distillation")
def test_fig8d_join_beats_lookups_and_agrees(benchmark):
    comparison = benchmark.pedantic(
        lambda: fig8_io.run_distillation_comparison(
            fixture=fig8_io.build_distillation_fixture(seed=11, buffer_pool_pages=96),
            iterations=2,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["join_vs_lookup_io_speedup"] = round(comparison.speedup(), 2)
    # Paper Figure 8(d): "The join approach is a factor of three faster."
    assert comparison.speedup() > 2.0
    assert comparison.rankings_agree(k=10)
