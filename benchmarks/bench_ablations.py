"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify how much each design
ingredient contributes:

* soft vs. hard focus rule (the paper states hard focus tends to stagnate),
* relevance-weighted vs. unweighted HITS edges (prestige leakage to
  universally popular off-topic pages),
* frontier ordering components (aggressive discovery vs. pure relevance
  vs. breadth-first).
"""

import pytest

from repro.crawler.focused import CrawlerConfig
from repro.crawler.policies import aggressive_discovery, breadth_first, relevance_only
from repro.distiller.hits import weighted_hits

CRAWL_PAGES = 400


@pytest.mark.benchmark(group="ablation-focus-rule")
@pytest.mark.parametrize("focus_mode", ["soft", "hard", "none"])
def test_ablation_focus_rule(benchmark, crawl_workload, focus_mode):
    """Soft focus should match or beat hard focus on harvest without stagnating."""
    system = crawl_workload.system
    seeds = system.default_seeds()
    config = CrawlerConfig(max_pages=CRAWL_PAGES, focus_mode=focus_mode, distill_every=200)

    result = benchmark.pedantic(
        lambda: system.crawl(max_pages=CRAWL_PAGES, seeds=seeds, crawler_config=config,
                             focused=focus_mode != "none"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["focus_mode"] = focus_mode
    benchmark.extra_info["harvest_rate"] = round(result.harvest_rate(), 4)
    benchmark.extra_info["pages_fetched"] = result.pages_fetched()
    benchmark.extra_info["stagnated"] = result.trace.stagnated
    if focus_mode == "soft":
        assert not result.trace.stagnated
        assert result.harvest_rate() > 0.25


@pytest.mark.benchmark(group="ablation-edge-weights")
def test_ablation_relevance_weighted_edges(benchmark, crawl_workload):
    """Relevance weighting must demote off-topic 'popular site' authorities."""
    system = crawl_workload.system
    web = crawl_workload.web
    result = system.crawl(max_pages=CRAWL_PAGES)
    crawler = result.crawler
    links = crawler._links_from_table()
    relevance = crawler._relevance_map()
    popular_oids = {web.page(u).oid for u in web.urls() if web.page(u).is_popular}

    def run_both():
        weighted = weighted_hits(links, relevance, rho=0.05, max_iterations=10)
        unweighted = weighted_hits(
            links, relevance, rho=0.05, max_iterations=10, use_relevance_weights=False
        )
        return weighted, unweighted

    weighted, unweighted = benchmark.pedantic(run_both, rounds=1, iterations=1)

    def popular_mass(distillation):
        return sum(
            score for oid, score in distillation.authority_scores.items() if oid in popular_oids
        )

    weighted_mass = popular_mass(weighted)
    unweighted_mass = popular_mass(unweighted)
    benchmark.extra_info["popular_authority_mass_weighted"] = round(weighted_mass, 5)
    benchmark.extra_info["popular_authority_mass_unweighted"] = round(unweighted_mass, 5)
    # Prestige leaks to off-topic popular pages without relevance weighting.
    assert weighted_mass <= unweighted_mass + 1e-9


@pytest.mark.benchmark(group="ablation-frontier")
@pytest.mark.parametrize(
    "ordering_name", ["aggressive_discovery", "relevance_only", "breadth_first"]
)
def test_ablation_frontier_ordering(benchmark, crawl_workload, ordering_name):
    """Compare crawl orderings; relevance-driven orderings must beat breadth-first."""
    orderings = {
        "aggressive_discovery": aggressive_discovery(),
        "relevance_only": relevance_only(),
        "breadth_first": breadth_first(),
    }
    system = crawl_workload.system
    seeds = system.default_seeds()
    config = CrawlerConfig(
        max_pages=CRAWL_PAGES, ordering=orderings[ordering_name], distill_every=200
    )
    result = benchmark.pedantic(
        lambda: system.crawl(max_pages=CRAWL_PAGES, seeds=seeds, crawler_config=config),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["ordering"] = ordering_name
    benchmark.extra_info["harvest_rate"] = round(result.harvest_rate(), 4)
    if ordering_name != "breadth_first":
        assert result.harvest_rate() > 0.25
