"""Figure 6 benchmark: URL and server coverage from a disjoint seed set.

Regenerates paper Figure 6: a reference crawl from seed set S1, a test
crawl from a disjoint seed set S2, and the fraction of the reference
crawl's relevant URLs / servers the test crawl re-discovers.
"""

import pytest

from repro.experiments.fig6_coverage import run_coverage_experiment


@pytest.mark.benchmark(group="fig6-coverage")
def test_fig6_coverage_from_disjoint_seeds(benchmark, crawl_workload):
    def run():
        return run_coverage_experiment(
            workload=crawl_workload, reference_pages=500, test_pages=500, seed_size=16
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["final_url_coverage"] = round(result.final_url_coverage, 4)
    benchmark.extra_info["final_server_coverage"] = round(result.final_server_coverage, 4)
    benchmark.extra_info["reference_relevant_urls"] = result.reference_relevant_urls
    # Paper: ≈83 % of relevant URLs and ≈90 % of servers re-discovered.  The
    # coverage must be substantial and servers must be covered at least as
    # well as URLs.
    assert result.final_url_coverage > 0.5
    assert result.final_server_coverage > 0.7
    assert result.final_server_coverage >= result.final_url_coverage - 0.05
