"""Figure 8(a–c) benchmarks: I/O performance of the DB-resident classifier.

Three access paths classify the same batch of documents stored in the
DOCUMENT table:

* ``sql``  — SingleProbe over the per-node STAT tables (one index probe
  per term per taxonomy node),
* ``blob`` — SingleProbe over the packed BLOB table,
* ``bulk`` — BulkProbe, the set-at-a-time join plan of paper Figure 3.

Wall-clock time is what pytest-benchmark reports; the *simulated I/O
cost* (the paper's "relative time") is attached as ``extra_info``, since
a pure-Python join executor has CPU overheads a C engine would not.
"""

import pytest

from repro.experiments import fig8_io

N_DOCUMENTS = 120
BUFFER_POOL_PAGES = 64


@pytest.fixture(scope="module")
def classifier_fixture():
    return fig8_io.build_classifier_fixture(
        n_documents=N_DOCUMENTS, buffer_pool_pages=BUFFER_POOL_PAGES, seed=7
    )


@pytest.mark.benchmark(group="fig8a-classifier")
@pytest.mark.parametrize("variant", ["sql", "blob", "bulk"])
def test_fig8a_classification_variants(benchmark, classifier_fixture, variant):
    measurement = benchmark.pedantic(
        lambda: fig8_io.measure_classifier_variant(classifier_fixture, variant),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["documents"] = measurement.documents
    benchmark.extra_info["simulated_io_cost"] = round(measurement.total_io_cost, 2)
    benchmark.extra_info["doc_scan_cost"] = round(measurement.doc_scan_cost, 2)
    benchmark.extra_info["probe_or_join_cost"] = round(measurement.probe_cost, 2)
    assert measurement.documents == N_DOCUMENTS


@pytest.mark.benchmark(group="fig8a-classifier")
def test_fig8a_bulk_probe_is_cheapest(benchmark, classifier_fixture):
    comparison = benchmark.pedantic(
        lambda: fig8_io.run_classifier_comparison(fixture=classifier_fixture),
        rounds=1,
        iterations=1,
    )
    speedup_vs_sql = comparison.speedup("sql", "bulk")
    speedup_vs_blob = comparison.speedup("blob", "bulk")
    benchmark.extra_info["bulk_vs_sql_io_speedup"] = round(speedup_vs_sql, 2)
    benchmark.extra_info["bulk_vs_blob_io_speedup"] = round(speedup_vs_blob, 2)
    # Paper Figure 8(a): "Over an order of magnitude reduction in overall
    # running time is seen using the bulk formulation."  We require the same
    # ordering (SQL > BLOB > CLI) and a substantial factor.
    assert comparison.measurements["sql"].total_io_cost > comparison.measurements["blob"].total_io_cost
    assert speedup_vs_sql > 2.0
    assert comparison.max_relevance_disagreement() < 1e-6


@pytest.mark.benchmark(group="fig8b-memory")
def test_fig8b_memory_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: fig8_io.run_memory_scaling(pool_sizes=(16, 32, 64, 128, 256, 512), n_documents=100),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["series"] = [
        {
            "pool_pages": p.buffer_pool_pages,
            "single_probe_cost": round(p.single_probe_cost, 1),
            "bulk_probe_cost": round(p.bulk_probe_cost, 1),
        }
        for p in points
    ]
    single = [p.single_probe_cost for p in points]
    bulk = [p.bulk_probe_cost for p in points]
    # Paper Figure 8(b): SingleProbe keeps improving as the buffer pool grows;
    # BulkProbe drops steeply and then stabilises at a small pool size.
    assert single[0] > single[-1] * 1.5
    assert bulk[0] <= single[0]
    assert bulk[-1] <= bulk[0]
    assert single[-1] > bulk[-1]


@pytest.mark.benchmark(group="fig8c-output-size")
def test_fig8c_bulk_cost_linear_in_output_size(benchmark):
    points = benchmark.pedantic(
        lambda: fig8_io.run_output_scaling(document_counts=(25, 50, 100, 200)),
        rounds=1,
        iterations=1,
    )
    correlation = fig8_io.output_scaling_correlation(points)
    benchmark.extra_info["correlation"] = round(correlation, 3)
    benchmark.extra_info["points"] = [
        {"output_size": p.output_size, "cost": round(p.bulk_cost, 2)} for p in points
    ]
    # Paper Figure 8(c): the bulk algorithm is roughly linear in output size.
    assert correlation > 0.7
